package oo7scan

import (
	"testing"

	"ghostbusters/internal/riscv"
)

func scan(t *testing.T, src string) *Report {
	t.Helper()
	p := riscv.MustAssemble(src)
	rep, err := Scan(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The Fig. 1 gadget in one function: the scanner must find the
// branch -> load -> dependent-load chain.
func TestFindsSpectreV1Gadget(t *testing.T) {
	src := `
	.data
size:	.dword 16
buffer:	.space 16
arrayVal: .space 1024
	.text
victim:
	la t0, size
	ld t0, 0(t0)
	bgeu a0, t0, out
	la t1, buffer
	add t1, t1, a0
	lbu t2, 0(t1)
	slli t2, t2, 7
	la t3, arrayVal
	add t3, t3, t2
	lbu t4, 0(t3)
out:
	ret
`
	rep := scan(t, src)
	if len(rep.Gadgets) == 0 {
		t.Fatal("gadget not found")
	}
	p := riscv.MustAssemble(src)
	// la expands to two instructions, then ld, then the bounds check.
	branchPC := p.MustSymbol("victim") + 12
	found := false
	for _, g := range rep.Gadgets {
		if g.BranchPC == branchPC {
			found = true
		}
	}
	if !found {
		t.Fatalf("no gadget anchored at the bounds check: %v", rep.Gadgets)
	}
}

// The whole-binary property the paper contrasts with: the gadget may be
// split across a call boundary (the secret load in a helper, the leak
// in the caller) — exactly why oo7 must analyse everything.
func TestFindsGadgetAcrossCall(t *testing.T) {
	src := `
	.data
buffer:	.space 16
arrayVal: .space 1024
	.text
caller:
	bgeu a0, t0, out
	call helper          # returns buffer[a0] in a1
	slli a1, a1, 7
	la t3, arrayVal
	add t3, t3, a1
	lbu t4, 0(t3)
out:
	ret
helper:
	la t1, buffer
	add t1, t1, a0
	lbu a1, 0(t1)
	ret
`
	rep := scan(t, src)
	// The helper ends in ret (jalr): the conservative walker stops
	// there, so this specific split is NOT found — demonstrating the
	// precision limits of static whole-binary analysis that the DBT
	// engine sidesteps entirely (it sees the actual trace).
	_ = rep
	// A jump-linked (tail-call) version IS visible statically:
	src2 := `
	.data
buffer:	.space 16
arrayVal: .space 1024
	.text
caller:
	bgeu a0, t0, out
	j helper
back:
	slli a1, a1, 7
	la t3, arrayVal
	add t3, t3, a1
	lbu t4, 0(t3)
out:
	ret
helper:
	la t1, buffer
	add t1, t1, a0
	lbu a1, 0(t1)
	j back
`
	rep2 := scan(t, src2)
	if len(rep2.Gadgets) == 0 {
		t.Fatal("cross-block gadget (via jumps) not found")
	}
}

func TestNoFalsePositiveOnAffineKernel(t *testing.T) {
	// Flat affine loop: loads never feed addresses.
	src := `
	.data
a:	.space 512
b:	.space 512
	.text
main:
	la s0, a
	la s1, b
	li s2, 0
loop:
	slli t0, s2, 3
	add t1, s0, t0
	ld t2, 0(t1)
	add t3, s1, t0
	sd t2, 0(t3)
	addi s2, s2, 1
	li t4, 64
	blt s2, t4, loop
	li a0, 0
	ecall
`
	rep := scan(t, src)
	if len(rep.Gadgets) != 0 {
		t.Fatalf("false positives: %v", rep.Gadgets)
	}
	if rep.Branches == 0 {
		t.Fatal("no branches analysed")
	}
}

func TestPointerChasingIsFlagged(t *testing.T) {
	src := `
	.data
table:	.space 64
	.text
main:
	blt a0, a1, body
	ret
body:
	la t0, table
	ld t1, 0(t0)       # load a pointer
	ld t2, 0(t1)       # dereference it: tainted address
	ret
`
	rep := scan(t, src)
	if len(rep.Gadgets) == 0 {
		t.Fatal("pointer chase under a branch not flagged")
	}
}

func TestTaintedStoreAddressFlagged(t *testing.T) {
	src := `
	.data
table:	.space 64
	.text
main:
	blt a0, a1, body
	ret
body:
	la t0, table
	ld t1, 0(t0)
	sd a0, 0(t1)       # store through a tainted pointer
	ret
`
	rep := scan(t, src)
	if len(rep.Gadgets) == 0 {
		t.Fatal("tainted store address not flagged")
	}
}

func TestWindowBoundsSearch(t *testing.T) {
	// The dependent access sits beyond a tiny window: not reported.
	src := `
	.data
table:	.space 64
	.text
main:
	blt a0, a1, body
	ret
body:
	la t0, table
	ld t1, 0(t0)
	addi t2, t2, 1
	addi t2, t2, 1
	addi t2, t2, 1
	addi t2, t2, 1
	ld t3, 0(t1)
	ret
`
	p := riscv.MustAssemble(src)
	small, err := Scan(p, Config{Window: 4, MaxPaths: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Gadgets) != 0 {
		t.Fatalf("gadget beyond the window reported: %v", small.Gadgets)
	}
	large, err := Scan(p, Config{Window: 32, MaxPaths: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(large.Gadgets) == 0 {
		t.Fatal("gadget inside the window missed")
	}
}

func TestCleanOverwriteClearsTaint(t *testing.T) {
	src := `
	.data
table:	.space 64
	.text
main:
	blt a0, a1, body
	ret
body:
	la t0, table
	ld t1, 0(t0)
	li t1, 8           # clean constant overwrites the taint
	ld t3, 0(t1)
	ret
`
	rep := scan(t, src)
	if len(rep.Gadgets) != 0 {
		t.Fatalf("stale taint after clean overwrite: %v", rep.Gadgets)
	}
}

func TestVisitCountReflectsWholeBinaryCost(t *testing.T) {
	// Build a program with many branches: the visit count must scale
	// with branches x window, the cost the paper says DBT avoids.
	src := "main:\n"
	for i := 0; i < 20; i++ {
		src += "\taddi t0, t0, 1\n\tblt t0, t1, main\n"
	}
	src += "\tecall\n"
	rep := scan(t, src)
	if rep.Branches != 20 {
		t.Fatalf("branches = %d", rep.Branches)
	}
	if rep.InstsVisited < 20*40 {
		t.Fatalf("visited only %d instructions; expected a whole-binary blowup", rep.InstsVisited)
	}
}
