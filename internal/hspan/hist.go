package hspan

import "math/bits"

// Histogram is a log-bucketed latency histogram over nanosecond
// observations, shaped for Prometheus histogram exposition: cumulative
// _bucket{le=...} counts, _sum, _count. Buckets are powers of two from
// histMinNS (1µs) — 28 finite upper bounds spanning 1µs to ~134s —
// because latencies worth alerting on range over six orders of
// magnitude and log-spaced buckets hold relative quantile error to a
// constant factor with a fixed, merge-stable layout (two histograms
// with the same layout merge by adding counts, in any order).
//
// The zero Histogram is ready to use. It is not internally locked:
// the serve metrics registry guards all histograms with its own mutex,
// and single-owner callers need nothing.
type Histogram struct {
	counts [histBuckets + 1]uint64 // per-bucket (non-cumulative); last is +Inf
	sum    int64
	count  uint64
}

const (
	histMinNS   = 1000 // first upper bound: 1µs
	histBuckets = 28   // finite bounds: 1µs << 0 .. 1µs << 27 (~134s)
)

// HistBounds returns the finite bucket upper bounds in nanoseconds
// (ascending; the implicit last bucket is +Inf). The returned slice is
// fresh on every call.
func HistBounds() []int64 {
	b := make([]int64, histBuckets)
	for i := range b {
		b[i] = histMinNS << uint(i)
	}
	return b
}

// bucketIndex maps an observation to the first bucket whose upper
// bound is >= ns. Observations <= 1µs land in bucket 0; anything over
// the largest finite bound lands in the +Inf bucket.
func bucketIndex(ns int64) int {
	if ns <= histMinNS {
		return 0
	}
	// Smallest i with histMinNS<<i >= ns, i.e. ceil(log2(ns/histMinNS)).
	i := bits.Len64(uint64(ns-1) / histMinNS)
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// Observe records one latency. Negative observations clamp to zero
// (clock skew between goroutines must not corrupt the distribution).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)]++
	h.sum += ns
	h.count++
}

// Merge adds o's observations into h. Because every Histogram shares
// one bucket layout, merge is element-wise addition — commutative and
// associative, so sharded collection orders cannot change the result.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
	h.count += o.count
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum }

// BucketCounts returns cumulative counts aligned with HistBounds plus
// a final +Inf entry (equal to Count), i.e. Prometheus le semantics.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, histBuckets+1)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-quantile (0..1) in nanoseconds by reading
// the cumulative distribution and reporting the upper bound of the
// bucket containing it — the conservative estimate Prometheus'
// histogram_quantile would interpolate within. Returns 0 when empty;
// observations in the +Inf bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i >= histBuckets {
				return histMinNS << uint(histBuckets-1)
			}
			return histMinNS << uint(i)
		}
	}
	return histMinNS << uint(histBuckets-1)
}
