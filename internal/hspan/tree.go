package hspan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonRecord is the wire shape of one span/v1 line, used only for
// decoding (the write path hand-renders for speed and determinism).
type jsonRecord struct {
	ID      uint64                     `json:"id"`
	Parent  uint64                     `json:"parent"`
	Name    string                     `json:"name"`
	StartNS int64                      `json:"start_ns"`
	EndNS   int64                      `json:"end_ns"`
	Attrs   map[string]json.RawMessage `json:"attrs"`
}

type jsonHeader struct {
	Schema string `json:"schema"`
}

// ParseJSONL decodes a span/v1 stream (as written by JSONLSink or the
// /v1/jobs/{id}/trace endpoint) back into records. The header line is
// validated and skipped; a stream with no header is also accepted so
// partial captures still parse.
func ParseJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if line == 1 {
			var h jsonHeader
			if err := json.Unmarshal(raw, &h); err == nil && h.Schema != "" {
				if h.Schema != Schema {
					return nil, fmt.Errorf("hspan: stream schema %q, want %q", h.Schema, Schema)
				}
				continue
			}
		}
		var jr jsonRecord
		if err := json.Unmarshal(raw, &jr); err != nil {
			return nil, fmt.Errorf("hspan: line %d: %w", line, err)
		}
		rec := Record{ID: jr.ID, Parent: jr.Parent, Name: jr.Name, Start: jr.StartNS, End: jr.EndNS}
		if len(jr.Attrs) > 0 {
			keys := make([]string, 0, len(jr.Attrs))
			for k := range jr.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				var i int64
				if err := json.Unmarshal(jr.Attrs[k], &i); err == nil {
					rec.Attrs = append(rec.Attrs, Int(k, i))
					continue
				}
				var s string
				if err := json.Unmarshal(jr.Attrs[k], &s); err != nil {
					return nil, fmt.Errorf("hspan: line %d: attr %q: %w", line, k, err)
				}
				rec.Attrs = append(rec.Attrs, Str(k, s))
			}
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Node is one span in a reconstructed tree.
type Node struct {
	Record
	Children []*Node
}

// BuildTree links records into span trees by Parent, returning the
// roots (Parent 0 or parent not present in the set — a truncated
// capture degrades to a forest instead of dropping spans). Roots and
// children are ordered by start time, then ID, so reconstruction is
// deterministic regardless of emission order (children always flush
// before their parents).
func BuildTree(recs []Record) []*Node {
	nodes := make(map[uint64]*Node, len(recs))
	for i := range recs {
		nodes[recs[i].ID] = &Node{Record: recs[i]}
	}
	var roots []*Node
	for i := range recs {
		n := nodes[recs[i].ID]
		if p, ok := nodes[n.Parent]; ok && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*Node)
	sortNodes = func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Start != ns[j].Start {
				return ns[i].Start < ns[j].Start
			}
			return ns[i].ID < ns[j].ID
		})
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// Attr returns the value of the named attribute on the record, if set.
func (r Record) Attr(key string) (Attr, bool) {
	for i := range r.Attrs {
		if r.Attrs[i].Key == key {
			return r.Attrs[i], true
		}
	}
	return Attr{}, false
}
