package hspan

import (
	"math/rand"
	"testing"
)

// TestHistBounds pins the layout: powers of two from 1µs, 28 finite
// bounds, strictly doubling — the merge-stability contract.
func TestHistBounds(t *testing.T) {
	b := HistBounds()
	if len(b) != histBuckets {
		t.Fatalf("len(bounds) = %d, want %d", len(b), histBuckets)
	}
	if b[0] != 1000 {
		t.Fatalf("bounds[0] = %d, want 1000 (1µs)", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bounds[%d] = %d, want %d (doubling)", i, b[i], 2*b[i-1])
		}
	}
	// Top finite bound covers ~134s — any realistic job latency.
	if top := b[len(b)-1]; top < 100_000_000_000 {
		t.Fatalf("top bound %dns does not cover realistic job wall times", top)
	}
}

// TestBucketIndex maps edge observations onto buckets: values exactly
// on a bound stay in that bucket (le semantics), one past moves up.
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {999, 0}, {1000, 0},
		{1001, 1}, {2000, 1}, {2001, 2}, {4000, 2},
		{1000 << 27, histBuckets - 1},
		{(1000 << 27) + 1, histBuckets},
		{1 << 62, histBuckets},
	}
	for _, c := range cases {
		ns := c.ns
		if ns < 0 {
			ns = 0 // Observe clamps; bucketIndex callers never pass negatives
		}
		if got := bucketIndex(ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestObserveCumulative: BucketCounts is cumulative and consistent
// with Count, and Sum tracks the raw values.
func TestObserveCumulative(t *testing.T) {
	var h Histogram
	h.Observe(500)  // bucket 0
	h.Observe(1500) // bucket 1
	h.Observe(3000) // bucket 2
	h.Observe(3000) // bucket 2
	h.Observe(-1)   // clamps to 0, bucket 0
	bc := h.BucketCounts()
	if len(bc) != histBuckets+1 {
		t.Fatalf("len(BucketCounts) = %d, want %d", len(bc), histBuckets+1)
	}
	if bc[0] != 2 || bc[1] != 3 || bc[2] != 5 {
		t.Fatalf("cumulative counts = %d,%d,%d want 2,3,5", bc[0], bc[1], bc[2])
	}
	if last := bc[len(bc)-1]; last != h.Count() {
		t.Fatalf("+Inf cumulative %d != Count %d", last, h.Count())
	}
	if h.Sum() != 500+1500+3000+3000 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	for i := 1; i < len(bc); i++ {
		if bc[i] < bc[i-1] {
			t.Fatalf("BucketCounts not monotonic at %d", i)
		}
	}
}

// TestMergeDeterminism: merging shards equals observing the union, in
// any order — element-wise addition over one fixed layout.
func TestMergeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 2000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1 << 30))
	}

	var whole Histogram
	for _, v := range vals {
		whole.Observe(v)
	}

	var a, b, c Histogram
	for i, v := range vals {
		switch i % 3 {
		case 0:
			a.Observe(v)
		case 1:
			b.Observe(v)
		default:
			c.Observe(v)
		}
	}
	var m1, m2 Histogram
	m1.Merge(&a)
	m1.Merge(&b)
	m1.Merge(&c)
	m2.Merge(&c)
	m2.Merge(&a)
	m2.Merge(&b)

	for _, m := range []*Histogram{&m1, &m2} {
		if m.Count() != whole.Count() || m.Sum() != whole.Sum() {
			t.Fatalf("merge count/sum = %d/%d, want %d/%d", m.Count(), m.Sum(), whole.Count(), whole.Sum())
		}
		mb, wb := m.BucketCounts(), whole.BucketCounts()
		for i := range mb {
			if mb[i] != wb[i] {
				t.Fatalf("merge bucket %d = %d, want %d", i, mb[i], wb[i])
			}
		}
	}
}

// TestQuantile: the estimate is the upper bound of the rank's bucket.
func TestQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 90 fast observations (~2µs bucket), 10 slow (~1ms bucket).
	for i := 0; i < 90; i++ {
		h.Observe(1500)
	}
	for i := 0; i < 10; i++ {
		h.Observe(600_000)
	}
	if q := h.Quantile(0.50); q != 2000 {
		t.Fatalf("p50 = %d, want 2000 (2µs bucket bound)", q)
	}
	// 600µs lands in the bucket with bound 1000<<10 ns = 1.024ms.
	if q := h.Quantile(0.99); q != 1000<<10 {
		t.Fatalf("p99 = %d, want %d", q, 1000<<10)
	}
	if q := h.Quantile(1.0); q != 1000<<10 {
		t.Fatalf("p100 = %d, want %d", q, 1000<<10)
	}
}
