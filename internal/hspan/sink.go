package hspan

import (
	"io"
	"strconv"

	"ghostbusters/internal/obs"
)

// Sink consumes finished span records. WriteSpan is called under the
// tracer's lock — sinks need no locking of their own. Close finalises
// the output; like obs sinks it does not close the underlying writer.
type Sink interface {
	WriteSpan(Record) error
	Close() error
}

// BaseSink is implemented by sinks that want the tracer's wall-clock
// anchor (Unix nanoseconds at tracer creation). New calls SetBase
// before any span can be written, so sinks can normalise timestamps to
// a zero origin (Perfetto) or record the anchor in a header (JSONL).
type BaseSink interface {
	SetBase(unixNS int64)
}

// MultiSink fans each record out to several sinks; the first error
// wins but every sink sees every record.
type MultiSink []Sink

// NewMultiSink bundles sinks into one.
func NewMultiSink(sinks ...Sink) MultiSink { return MultiSink(sinks) }

func (m MultiSink) SetBase(unixNS int64) {
	for _, s := range m {
		if bs, ok := s.(BaseSink); ok {
			bs.SetBase(unixNS)
		}
	}
}

func (m MultiSink) WriteSpan(r Record) error {
	var first error
	for _, s := range m {
		if err := s.WriteSpan(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// appendRecord renders r as the ghostbusters/span/v1 JSON object:
//
//	{"id":N,"parent":N,"name":"x","start_ns":N,"end_ns":N,"attrs":{...}}
//
// Attrs render in the order they were recorded (Start attrs first) —
// call sites pass them in a fixed order, so the stream stays
// deterministic without a sort. Shared by the JSONL sink and the
// /v1/jobs/{id}/trace endpoint via Record.AppendJSON.
func appendRecord(b []byte, r *Record) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, r.ID, 10)
	b = append(b, `,"parent":`...)
	b = strconv.AppendUint(b, r.Parent, 10)
	b = append(b, `,"name":`...)
	b = appendQuoted(b, r.Name)
	b = append(b, `,"start_ns":`...)
	b = strconv.AppendInt(b, r.Start, 10)
	b = append(b, `,"end_ns":`...)
	b = strconv.AppendInt(b, r.End, 10)
	if len(r.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i := range r.Attrs {
			a := &r.Attrs[i]
			if i > 0 {
				b = append(b, ',')
			}
			b = appendQuoted(b, a.Key)
			b = append(b, ':')
			if a.IsInt {
				b = strconv.AppendInt(b, a.Int, 10)
			} else {
				b = appendQuoted(b, a.Str)
			}
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// AppendJSON appends the record's span/v1 JSON object to b.
func (r Record) AppendJSON(b []byte) []byte { return appendRecord(b, &r) }

// appendQuoted renders s as a quoted JSON string, fast-pathing the
// plain-ASCII names and attr values spans actually carry.
func appendQuoted(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.AppendQuote(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// HeaderJSON renders the span/v1 stream header line (without trailing
// newline): schema, clock domain, and the tracer's wall-clock anchor.
func HeaderJSON(baseUnixNS int64) []byte {
	b := []byte(`{"schema":"` + Schema + `","clock":"unix_ns","base_unix_ns":`)
	b = strconv.AppendInt(b, baseUnixNS, 10)
	return append(b, '}')
}

// JSONLSink writes the span/v1 stream: one header line naming the
// schema and clock anchor, then one record object per line.
type JSONLSink struct {
	w      io.Writer
	buf    []byte
	base   int64
	opened bool
}

// NewJSONLSink builds a span/v1 JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

func (s *JSONLSink) SetBase(unixNS int64) { s.base = unixNS }

func (s *JSONLSink) header() error {
	if s.opened {
		return nil
	}
	s.opened = true
	b := append(HeaderJSON(s.base), '\n')
	_, err := s.w.Write(b)
	return err
}

func (s *JSONLSink) WriteSpan(r Record) error {
	if err := s.header(); err != nil {
		return err
	}
	b := appendRecord(s.buf[:0], &r)
	b = append(b, '\n')
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// Close writes the header if nothing was ever emitted, so even an
// empty trace is a valid (schema-identified) stream.
func (s *JSONLSink) Close() error { return s.header() }

// PerfettoSink renders host spans into an obs Perfetto document as a
// second process: pid 1 "ghostbusters-host", complete ("X") events in
// real microseconds next to the simulator's pid 0 simulated-cycle
// tracks. The document is owned by the obs tracer — this sink's Close
// is a no-op and the obs side writes the terminator — so span tracers
// must be closed before the obs tracer.
type PerfettoSink struct {
	doc    *obs.PerfettoSink
	buf    []byte
	base   int64
	opened bool
}

// NewPerfettoSink adapts host spans onto doc, the simulated-cycle
// Perfetto document they should interleave into.
func NewPerfettoSink(doc *obs.PerfettoSink) *PerfettoSink {
	return &PerfettoSink{doc: doc}
}

const hostPID = 1

func (s *PerfettoSink) SetBase(unixNS int64) { s.base = unixNS }

func (s *PerfettoSink) metadata() error {
	if s.opened {
		return nil
	}
	s.opened = true
	if err := s.doc.WriteRawEvent([]byte(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"ghostbusters-host"}}`)); err != nil {
		return err
	}
	return s.doc.WriteRawEvent([]byte(`{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"host-spans"}}`))
}

// appendMicros renders ns as microseconds with three decimals — the
// trace-event "ts"/"dur" unit — preserving nanosecond precision.
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		b = append(b, '-')
		ns = -ns
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	return b
}

func (s *PerfettoSink) WriteSpan(r Record) error {
	if err := s.metadata(); err != nil {
		return err
	}
	b := s.buf[:0]
	b = append(b, `{"cat":"host","ph":"X","ts":`...)
	b = appendMicros(b, r.Start-s.base)
	b = append(b, `,"dur":`...)
	b = appendMicros(b, r.End-r.Start)
	b = append(b, `,"pid":1,"tid":0,"name":`...)
	b = appendQuoted(b, r.Name)
	if len(r.Attrs) > 0 {
		b = append(b, `,"args":{`...)
		for i := range r.Attrs {
			a := &r.Attrs[i]
			if i > 0 {
				b = append(b, ',')
			}
			b = appendQuoted(b, a.Key)
			b = append(b, ':')
			if a.IsInt {
				b = strconv.AppendInt(b, a.Int, 10)
			} else {
				b = appendQuoted(b, a.Str)
			}
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	s.buf = b
	return s.doc.WriteRawEvent(b)
}

// Close is a no-op: the obs tracer owns the document and writes its
// terminator. It does ensure the host process metadata exists, so a
// span tracer that never emitted still leaves a recognisable (empty)
// host track set.
func (s *PerfettoSink) Close() error { return s.metadata() }
