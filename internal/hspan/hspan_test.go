package hspan

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ghostbusters/internal/obs"
)

// TestJSONLRoundTrip exercises the core write→parse→tree path: a
// realistic job-shaped span tree goes out through the JSONL sink and
// must come back with identical structure, times, and attrs.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))

	root := tr.Start("job", Str("tenant", "acme"), Str("id", "j-000001"))
	adm := root.Child("admission")
	adm.End(Int("allowance", 500000))
	q := root.Child("queue-wait")
	q.End()
	att := root.Child("attempt", Int("attempt", 0))
	att.Emit("translate", att.StartNS(), att.StartNS()+1500, Int("ns", 1500))
	att.End(Str("outcome", "ok"))
	root.End(Str("state", "done"))
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	first, _, _ := strings.Cut(buf.String(), "\n")
	var hdr map[string]any
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatalf("header not JSON: %v\n%s", err, first)
	}
	if hdr["schema"] != Schema {
		t.Fatalf("header schema = %v, want %q", hdr["schema"], Schema)
	}
	if hdr["clock"] != "unix_ns" {
		t.Fatalf("header clock = %v, want unix_ns", hdr["clock"])
	}

	recs, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}

	roots := BuildTree(recs)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	r := roots[0]
	if r.Name != "job" {
		t.Fatalf("root name = %q, want job", r.Name)
	}
	if a, ok := r.Attr("tenant"); !ok || a.Str != "acme" {
		t.Fatalf("root tenant attr = %+v, %v", a, ok)
	}
	if a, ok := r.Attr("state"); !ok || a.Str != "done" {
		t.Fatalf("root state attr (End-merged) = %+v, %v", a, ok)
	}
	if len(r.Children) != 3 {
		t.Fatalf("root has %d children, want 3", len(r.Children))
	}
	// Children sort by start time: admission, queue-wait, attempt.
	names := []string{r.Children[0].Name, r.Children[1].Name, r.Children[2].Name}
	want := []string{"admission", "queue-wait", "attempt"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("children = %v, want %v", names, want)
		}
	}
	attempt := r.Children[2]
	if len(attempt.Children) != 1 || attempt.Children[0].Name != "translate" {
		t.Fatalf("attempt children = %+v, want one translate", attempt.Children)
	}
	tl := attempt.Children[0]
	if tl.End-tl.Start != 1500 {
		t.Fatalf("translate duration = %d, want 1500", tl.End-tl.Start)
	}
	for _, rec := range recs {
		if rec.Start <= 0 || rec.End < rec.Start {
			t.Fatalf("record %q has bad times [%d,%d]", rec.Name, rec.Start, rec.End)
		}
	}
}

// TestBuildTreeForest: records whose parent is missing from the set
// (truncated capture) become roots instead of vanishing.
func TestBuildTreeForest(t *testing.T) {
	recs := []Record{
		{ID: 5, Parent: 99, Name: "orphan", Start: 30, End: 40},
		{ID: 2, Parent: 1, Name: "child", Start: 20, End: 25},
		{ID: 1, Parent: 0, Name: "root", Start: 10, End: 50},
	}
	roots := BuildTree(recs)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (root + orphan)", len(roots))
	}
	if roots[0].Name != "root" || roots[1].Name != "orphan" {
		t.Fatalf("roots = %q, %q (start-time order)", roots[0].Name, roots[1].Name)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "child" {
		t.Fatalf("root children = %+v", roots[0].Children)
	}
}

// TestDisabledSpansAllocs pins the acceptance criterion: every span
// hook on a nil tracer — Start with attrs, Child, End with attrs,
// Emit, Now — is 0 allocs/op, so instrumentation can stay
// unconditionally wired through harness and serve.
func TestDisabledSpansAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("job", Str("tenant", "acme"), Int("cells", 21))
		c := sp.Child("attempt", Int("attempt", 1))
		c.Emit("translate", 0, 100, Int("ns", 100))
		c.End(Str("outcome", "ok"))
		sp.End()
		_ = tr.Now()
		_ = sp.Enabled()
		_ = tr.Fork(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v allocs/op, want 0", allocs)
	}
}

// TestFork: a forked tracer shares clock/IDs/sink, and its observer
// sees every record emitted through the fork (but not the parent's).
func TestFork(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	var seen []string
	f := tr.Fork(func(r Record) { seen = append(seen, r.Name) })

	p := tr.Start("parent-only")
	p.End()
	sp := f.Start("forked")
	sp.Child("kid").End()
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	if len(seen) != 2 || seen[0] != "kid" || seen[1] != "forked" {
		t.Fatalf("observer saw %v, want [kid forked]", seen)
	}
	recs, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("sink saw %d records, want 3 (shared sink)", len(recs))
	}
	ids := map[uint64]bool{}
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("duplicate span ID %d across fork (sequence not shared)", r.ID)
		}
		ids[r.ID] = true
	}

	// Fork-of-fork composes observers, outermost first.
	var order []string
	f2 := f.Fork(func(r Record) { order = append(order, "inner:"+r.Name) })
	seen = seen[:0]
	f2.Start("x").End()
	if len(seen) != 1 || len(order) != 1 {
		t.Fatalf("composed observers: outer=%v inner=%v", seen, order)
	}
}

// TestPerfettoDualClock: host spans written through the adapter land
// in the same document as simulated-cycle obs events, as a second
// process (pid 1), and the whole document parses as JSON.
func TestPerfettoDualClock(t *testing.T) {
	var buf bytes.Buffer
	doc := obs.NewPerfettoSink(&buf)

	// Guest side: one simulated-cycle event batch through the obs sink.
	if err := doc.WriteEvents([]obs.Event{
		{Kind: obs.EvBlockEnter, Cycle: 100, PC: 0x40, Str: "blk", Arg1: 4, Arg2: 2},
		{Kind: obs.EvBlockExit, Cycle: 140, PC: 0x40, Arg1: 0x80},
	}); err != nil {
		t.Fatalf("obs write: %v", err)
	}

	// Host side: spans through the adapter into the same document.
	tr := New(NewPerfettoSink(doc))
	sp := tr.Start("job", Str("tenant", "acme"))
	sp.Child("attempt", Int("attempt", 0)).End()
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("span close: %v", err)
	}
	if err := doc.Close(); err != nil {
		t.Fatalf("doc close: %v", err)
	}

	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Cat  string  `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("document not valid JSON: %v\n%s", err, buf.String())
	}
	var simEvents, hostSpans, hostMeta int
	for _, e := range trace.TraceEvents {
		switch {
		case e.Pid == 0 && e.Cat == "sim":
			simEvents++
		case e.Pid == 1 && e.Ph == "X":
			hostSpans++
			if e.Ts < 0 {
				t.Fatalf("host span %q has negative ts %v (base not applied)", e.Name, e.Ts)
			}
		case e.Pid == 1 && e.Ph == "M":
			hostMeta++
		}
	}
	if simEvents != 2 {
		t.Fatalf("sim events = %d, want 2", simEvents)
	}
	if hostSpans != 2 {
		t.Fatalf("host spans = %d, want 2", hostSpans)
	}
	if hostMeta != 2 {
		t.Fatalf("host metadata events = %d, want 2 (process+thread name)", hostMeta)
	}
}

// TestAppendMicros checks the µs rendering keeps ns precision.
func TestAppendMicros(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"},
		{1234567, "1234.567"}, {-1500, "-1.500"},
	}
	for _, c := range cases {
		if got := string(appendMicros(nil, c.ns)); got != c.want {
			t.Errorf("appendMicros(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// TestEmptyJSONLStream: a tracer that never emits still closes to a
// valid schema-identified stream.
func TestEmptyJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	out := buf.String()
	recs, err := ParseJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from empty stream", len(recs))
	}
	if !strings.Contains(out, Schema) {
		t.Fatalf("empty stream missing schema header: %q", out)
	}
}

// TestParseRejectsWrongSchema guards against silently reading a v2
// stream with v1 tooling.
func TestParseRejectsWrongSchema(t *testing.T) {
	in := `{"schema":"ghostbusters/span/v2","clock":"unix_ns","base_unix_ns":1}` + "\n"
	if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("want schema mismatch error, got nil")
	}
}
