// Package hspan is the host-side span-tracing layer: the second clock
// domain of the observability stack. internal/obs times everything in
// *simulated cycles* — the guest's view of the world — while hspan
// times the *host's* work in wall-clock nanoseconds: job admission,
// queue wait, translation versus execution, retry backoff sleeps,
// drain. The two compose in one Perfetto document (PerfettoSink writes
// host spans into the same file the obs sink owns, under a separate
// process), so a timeline shows what the simulated machine did and
// what it cost the host, side by side.
//
// The contract mirrors obs: a nil *Tracer (and the zero Span) is a
// valid no-op, pinned at 0 allocs per hook by TestDisabledSpansAllocs,
// so span instrumentation can stay unconditionally wired through the
// harness and the service. Unlike obs tracers — single-owner by
// design — an hspan Tracer is safe for concurrent use: the service
// ends spans from many worker goroutines.
//
// Spans form a tree (ID/Parent), and every finished span is emitted as
// one Record: name, absolute start/end in Unix nanoseconds, and typed
// attributes. The JSONL sink writes schema ghostbusters/span/v1.
package hspan

import (
	"sync"
	"sync/atomic"
	"time"
)

// Schema identifies the span JSONL stream format (the header line's
// "schema" field and the /v1/jobs/{id}/trace stream).
const Schema = "ghostbusters/span/v1"

// Attr is one typed span attribute. Attrs are values (no pointers, no
// interfaces) so building them on a disabled path allocates nothing.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val, IsInt: true} }

// Record is one finished span. Start and End are absolute Unix
// nanoseconds derived from a monotonic reading, so records from one
// tracer are mutually consistent and still anchor to wall time for log
// correlation. Parent 0 means a root span.
type Record struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  int64
	End    int64
	Attrs  []Attr
}

// state is the shared core of a tracer and all of its forks: one
// clock, one span-ID sequence, one sink.
type state struct {
	mu     sync.Mutex
	sink   Sink
	err    error
	closed bool

	base     time.Time // monotonic anchor
	baseUnix int64     // base.UnixNano(), fixed at creation
	ids      atomic.Uint64
}

// Tracer creates and collects spans. A nil *Tracer is a valid no-op:
// every method returns immediately and Start returns the zero Span.
// Tracers are safe for concurrent use.
type Tracer struct {
	st *state
	// obs, when non-nil, observes every record emitted through this
	// tracer (and spans derived from it) before it reaches the sink —
	// the service's per-job span buffers ride here. Observer errors
	// cannot exist: observers are plain callbacks.
	obs func(Record)
}

// New builds a tracer over sink. sink may be nil (spans are still
// timed and forked observers still see them — the service uses this
// for the /trace endpoint without a span file). If the sink implements
// BaseSink it is told the tracer's wall-clock anchor immediately.
func New(sink Sink) *Tracer {
	base := time.Now()
	t := &Tracer{st: &state{sink: sink, base: base, baseUnix: base.UnixNano()}}
	if bs, ok := sink.(BaseSink); ok {
		bs.SetBase(t.st.baseUnix)
	}
	return t
}

// Fork returns a tracer sharing this one's clock, span-ID sequence and
// sink, with observer called on every record emitted through the fork.
// Observers compose: a fork of a fork calls both, outermost first.
func (t *Tracer) Fork(observer func(Record)) *Tracer {
	if t == nil {
		return nil
	}
	f := observer
	if prev := t.obs; prev != nil {
		f = func(r Record) {
			prev(r)
			observer(r)
		}
	}
	return &Tracer{st: t.st, obs: f}
}

// Now returns the tracer's current timestamp: absolute Unix
// nanoseconds advanced by the monotonic clock. 0 on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.st.baseUnix + time.Since(t.st.base).Nanoseconds()
}

// Base returns the tracer's wall-clock anchor (Unix nanoseconds at
// creation) — what HeaderJSON wants. 0 on a nil tracer.
func (t *Tracer) Base() int64 {
	if t == nil {
		return 0
	}
	return t.st.baseUnix
}

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	return t.st.err
}

// Close finalises the sink (idempotent; forks share the closed state).
// Spans ended after Close are observed but no longer written.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	st := t.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.closed {
		st.closed = true
		if st.sink != nil {
			if err := st.sink.Close(); err != nil && st.err == nil {
				st.err = err
			}
		}
	}
	return st.err
}

// emit delivers one finished record: observers first, then the sink.
func (t *Tracer) emit(r Record) {
	if t.obs != nil {
		t.obs(r)
	}
	st := t.st
	st.mu.Lock()
	if st.sink != nil && !st.closed {
		if err := st.sink.WriteSpan(r); err != nil && st.err == nil {
			st.err = err
		}
	}
	st.mu.Unlock()
}

// Span is a live span handle. It is a small value, copied freely; the
// zero Span (from a nil tracer) is a valid no-op.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	start  int64
	name   string
	attrs  []Attr
}

// Start opens a root span. The attrs are recorded on the span's final
// Record (End may add more). The variadic slice is copied, never
// retained — that keeps it non-escaping, so call sites on a nil tracer
// build it on the stack and the disabled path stays 0 allocs/op.
func (t *Tracer) Start(name string, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	sp := Span{t: t, id: t.st.ids.Add(1), start: t.Now(), name: name}
	if len(attrs) > 0 {
		sp.attrs = append(make([]Attr, 0, len(attrs)), attrs...)
	}
	return sp
}

// Enabled reports whether the span is live (false for the zero Span).
func (s Span) Enabled() bool { return s.t != nil }

// ID returns the span's ID (0 for the zero Span).
func (s Span) ID() uint64 { return s.id }

// StartNS returns the span's start timestamp on the tracer clock.
func (s Span) StartNS() int64 { return s.start }

// Tracer returns the tracer the span was started on (nil for the zero
// Span) — the handle the harness uses to derive further spans without
// a separate field.
func (s Span) Tracer() *Tracer { return s.t }

// Child opens a span parented under s.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.t == nil {
		return Span{}
	}
	sp := s.t.Start(name, attrs...)
	sp.parent = s.id
	return sp
}

// End finishes the span and emits its Record. attrs are appended to
// the ones given at Start. Ending the zero Span does nothing.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	all := s.attrs
	if len(attrs) > 0 {
		all = make([]Attr, 0, len(s.attrs)+len(attrs))
		all = append(all, s.attrs...)
		all = append(all, attrs...)
	}
	s.t.emit(Record{ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, End: s.t.Now(), Attrs: all})
}

// Emit records a synthetic child span of s with explicit timestamps on
// the tracer clock — how the harness splits a cell into its
// translate/execute phases after the fact, from the machine's own
// measurements.
func (s Span) Emit(name string, startNS, endNS int64, attrs ...Attr) {
	if s.t == nil {
		return
	}
	var all []Attr
	if len(attrs) > 0 {
		// Copy rather than retain, as in Start: the variadic slice
		// stays non-escaping and the disabled path allocation-free.
		all = append(make([]Attr, 0, len(attrs)), attrs...)
	}
	s.t.emit(Record{ID: s.t.st.ids.Add(1), Parent: s.id, Name: name,
		Start: startNS, End: endNS, Attrs: all})
}
