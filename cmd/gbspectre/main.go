// Command gbspectre runs the paper's Spectre proofs of concept on the
// simulated DBT-based processor:
//
//	gbspectre [-variant v1|v4] [-mode <mitigation>]
//	          [-secret hexbytes] [-protect] [-lineflush]
//	          [-traceout file] [-trace-format text|jsonl|perfetto]
//	          [-stats] [-json] [-audit] [-audit-json file]
//	          [-detect] [-detect-json file] [-spans file]
//	          [-matrix-json file]
//
// With no flags it runs both variants under every registered mitigation
// (the Section V-A matrix extended with the ported mitigation zoo);
// -matrix-json additionally writes the machine-readable leakage matrix
// (schema ghostbusters/leakmatrix/v1) with per-cell ground-truth bits
// leaked and slowdown versus unsafe. -traceout captures the attack's full event
// stream — block dispatches, speculative loads and squashes, cache
// flushes — timed in simulated cycles; with -trace-format perfetto the
// file loads directly in ui.perfetto.dev, making the transient window
// of the attack visible on a timeline.
//
// Every single-variant run prints the side-channel scoreboard: the
// ground truth of which secret-dependent cache lines the victim
// speculatively filled (bits leaked into the microarchitectural
// domain), alongside what the attacker's timing loop recovered. -stats
// prints the machine's counters; with -json the metrics snapshot is
// emitted in the same format as `gbrun -stats -json`, extended with the
// attack.* scoreboard metrics.
//
// -audit / -audit-json collect the poison-provenance audit during the
// attack and print the explainability table / write the JSON document
// (schema ghostbusters/audit/v1) — the mitigation explaining exactly
// which loads of the victim it pinned and why.
//
// -detect runs the online attack-phase detector against the attack's
// own event stream — the detector watching the attacker, with the
// scoreboard as ground truth: the verdict prints alongside the alarm's
// latency in cycles after the first secret-dependent speculative fill.
// -detect-json writes the verdict document (schema
// ghostbusters/detect/v1); either flag enables detection, and both
// compose with -traceout (the detection tracks are appended to the
// trace).
//
// -spans writes the attack's host-side span timeline as
// ghostbusters/span/v1 JSONL (host wall-clock nanoseconds). With
// `-traceout file -trace-format perfetto` the spans are also mirrored
// into the same Perfetto document on a second clock domain, so one
// file shows the attack's simulated-cycle events and its host-time
// cost side by side.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ghostbusters"
)

func main() {
	variant := flag.String("variant", "", "v1 | v4 (empty = full matrix)")
	mode := flag.String("mode", "unsafe", "mitigation mode")
	secretHex := flag.String("secret", "", "secret bytes in hex (empty = random)")
	protect := flag.Bool("protect", false, "read-protect the secret region")
	lineflush := flag.Bool("lineflush", false, "line-by-line cache flush (paper's RISC-V variant)")
	traceOut := flag.String("traceout", "", "write the attack's trace event stream to this file")
	traceFormat := flag.String("trace-format", "perfetto", "trace file format: text | jsonl | perfetto")
	stats := flag.Bool("stats", false, "print machine statistics after the attack")
	jsonOut := flag.Bool("json", false, "with -stats, print the metrics snapshot (machine + attack.*) as JSON")
	audit := flag.Bool("audit", false, "collect poison provenance and print the audit table")
	auditJSON := flag.String("audit-json", "", "write the audit as JSON (schema ghostbusters/audit/v1) to this file")
	detectFlag := flag.Bool("detect", false, "run the online attack-phase detector against the attack and print its verdict")
	detectJSON := flag.String("detect-json", "", "write the detection verdict as JSON (schema ghostbusters/detect/v1) to this file")
	matrixJSON := flag.String("matrix-json", "", "matrix mode: write the leakage matrix as JSON (schema ghostbusters/leakmatrix/v1) to this file")
	spansOut := flag.String("spans", "", "write the host-side span timeline (JSONL, schema ghostbusters/span/v1) to this file")
	flag.Parse()

	cfg := ghostbusters.DefaultConfig()

	if *variant == "" {
		// Matrix mode fixes its own variants, modes and parameters, so
		// every single-run flag is meaningless here. Reject them all at
		// once — flag.Visit walks only explicitly-set flags, in
		// lexicographical order, so the error is complete and stable
		// rather than whichever map key a range happened to yield.
		singleRunOnly := map[string]bool{
			"audit": true, "audit-json": true, "detect": true,
			"detect-json": true, "json": true, "lineflush": true,
			"mode": true, "protect": true, "secret": true, "spans": true,
			"stats": true, "trace-format": true, "traceout": true,
		}
		var offending []string
		flag.Visit(func(f *flag.Flag) {
			if singleRunOnly[f.Name] {
				offending = append(offending, "-"+f.Name)
			}
		})
		if len(offending) > 0 {
			verb := "needs"
			if len(offending) > 1 {
				verb = "need"
			}
			fail(fmt.Errorf("%s %s a single run: pick a -variant", strings.Join(offending, ", "), verb))
		}
		table, lm, err := ghostbusters.RunLeakageMatrix(cfg)
		fail(err)
		fmt.Print(table)
		if *matrixJSON != "" {
			out, err := lm.JSON()
			fail(err)
			fail(os.WriteFile(*matrixJSON, out, 0o644))
		}
		return
	}
	if *matrixJSON != "" {
		fail(fmt.Errorf("-matrix-json applies to the matrix: drop -variant"))
	}

	var v ghostbusters.AttackVariant
	switch *variant {
	case "v1":
		v = ghostbusters.SpectreV1
	case "v4":
		v = ghostbusters.SpectreV4
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	m, err := ghostbusters.ParseMode(*mode)
	fail(err)

	params := ghostbusters.AttackParams{ProtectSecret: *protect}
	if *lineflush {
		params.Flush = ghostbusters.FlushLineByLine
	}
	if *secretHex != "" {
		b, err := hex.DecodeString(*secretHex)
		fail(err)
		params.Secret = b
	}

	var traceFile *os.File
	var fileSink ghostbusters.TraceSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		traceFile = f
		fileSink, err = ghostbusters.TraceSinkFor(*traceFormat, f)
		fail(err)
	}
	var detector *ghostbusters.Detector
	if *detectFlag || *detectJSON != "" {
		detector = ghostbusters.NewDetector(ghostbusters.DetectConfig{})
	}
	switch {
	case fileSink != nil && detector != nil:
		cfg.Tracer = ghostbusters.NewTracer(ghostbusters.TraceSpec, ghostbusters.NewTraceTee(fileSink, detector))
	case fileSink != nil:
		cfg.Tracer = ghostbusters.NewTracer(ghostbusters.TraceSpec, fileSink)
	case detector != nil:
		cfg.Tracer = ghostbusters.NewTracer(ghostbusters.TraceSpec, detector)
	}
	cfg.Audit = *audit || *auditJSON != ""

	// The host-side span layer: a JSONL file, plus a mirror into the
	// -traceout Perfetto document when one is open, so the attack's
	// guest-cycle events and the host-ns timeline land in one file.
	var spanTracer *ghostbusters.SpanTracer
	var spanFile *os.File
	var root ghostbusters.Span
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		fail(err)
		spanFile = f
		sinks := []ghostbusters.SpanSink{ghostbusters.NewSpanJSONLSink(f)}
		if pf, ok := ghostbusters.NewSpanPerfettoSink(fileSink); ok {
			sinks = append(sinks, pf)
		}
		spanTracer = ghostbusters.NewSpanTracer(ghostbusters.NewSpanMultiSink(sinks...))
		root = spanTracer.Start("gbspectre",
			ghostbusters.SpanStr("variant", *variant), ghostbusters.SpanStr("mode", *mode))
	}

	as := root.Child("attack")
	res, err := ghostbusters.RunAttack(v, ghostbusters.WithMitigation(cfg, m), params)
	if err == nil {
		as.End(ghostbusters.SpanInt("cycles", int64(res.Cycles)),
			ghostbusters.SpanInt("bytes_leaked", int64(res.BytesCorrect)))
	} else {
		as.End(ghostbusters.SpanStr("outcome", "error"))
	}
	var detectRep *ghostbusters.DetectReport
	if detector != nil && err == nil {
		// Flush the stream tail into the detector and append the
		// inferred phase/rounds/alarm tracks to the still-open trace.
		_ = cfg.Tracer.Flush()
		detectRep = detector.Report()
		detectRep.EmitTracks(cfg.Tracer)
	}
	// Close the span layer before the cycle tracer: its Perfetto mirror
	// writes into the document the tracer's Close terminates.
	if spanTracer != nil {
		root.End()
		if cerr := spanTracer.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gbspectre: spans:", cerr)
		}
		if cerr := spanFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gbspectre: spans:", cerr)
		}
	}
	if cfg.Tracer != nil {
		// Flush even when the attack errored, so a partial trace of the
		// failing run survives for inspection.
		if cerr := cfg.Tracer.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gbspectre: trace:", cerr)
		}
		if traceFile != nil {
			if cerr := traceFile.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "gbspectre: trace:", cerr)
			}
		}
	}
	fail(err)
	fmt.Printf("%s under %s\n", res.Variant, m)
	fmt.Printf("  secret:    %x\n", res.Secret)
	fmt.Printf("  recovered: %x\n", res.Recovered)
	fmt.Printf("  leaked %d/%d bytes in %d cycles\n", res.BytesCorrect, len(res.Secret), res.Cycles)
	fmt.Printf("  speculative loads %d, MCB recoveries %d, patterns detected %d\n",
		res.Stats.SpecLoads, res.Stats.Recoveries, res.Stats.PatternsFound)
	if res.Success() {
		fmt.Println("  => the secret LEAKED")
	} else {
		fmt.Println("  => the attack FAILED")
	}
	fmt.Println("side-channel scoreboard:")
	fmt.Print(indent(res.Leakage.String()))
	if detectRep != nil {
		fmt.Println("online detection:")
		fmt.Print(indent(detectRep.Format()))
		if detectRep.Alarm && res.Leakage.FirstSecretFillCycle != 0 {
			fmt.Printf("  alarm latency: %+d cycles vs the first secret-dependent speculative fill\n",
				int64(detectRep.AlarmCycle)-int64(res.Leakage.FirstSecretFillCycle))
		}
		if *detectJSON != "" {
			out, err := detectRep.JSON()
			fail(err)
			fail(os.WriteFile(*detectJSON, out, 0o644))
		}
	}
	if *audit || *auditJSON != "" {
		if res.Audit == nil {
			fail(fmt.Errorf("audit requested but none collected"))
		}
		if *audit {
			fmt.Print(res.Audit.Format())
		}
		if *auditJSON != "" {
			out, err := json.MarshalIndent(res.Audit.Doc(), "", "  ")
			fail(err)
			fail(os.WriteFile(*auditJSON, append(out, '\n'), 0o644))
		}
	}
	if *stats {
		snap := res.Stats.Snapshot(res.Cycles)
		res.Leakage.AddMetrics(snap)
		if detectRep != nil {
			detectRep.AddMetrics(snap)
		}
		if *jsonOut {
			out, err := json.MarshalIndent(snap, "", "  ")
			fail(err)
			fmt.Println(string(out))
		} else {
			s := res.Stats
			fmt.Printf("interp-insts=%d blocks=%d traces=%d block-execs=%d bundles=%d\n",
				s.InterpInsts, s.Blocks, s.Traces, s.BlockExecs, s.Bundles)
			fmt.Printf("spec-loads=%d squashed=%d recoveries=%d side-exits=%d\n",
				s.SpecLoads, s.SpecSquash, s.Recoveries, s.SideExits)
			fmt.Printf("patterns=%d risky-loads=%d guard-edges=%d compile-errors=%d\n",
				s.PatternsFound, s.RiskyLoads, s.GuardEdges, s.CompileErrs)
		}
	}
}

// indent prefixes every line with two spaces, matching the rest of the
// report.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbspectre:", err)
		os.Exit(1)
	}
}
