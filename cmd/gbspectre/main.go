// Command gbspectre runs the paper's Spectre proofs of concept on the
// simulated DBT-based processor:
//
//	gbspectre [-variant v1|v4] [-mode unsafe|ghostbusters|fence|nospec]
//	          [-secret hexbytes] [-protect] [-lineflush]
//	          [-traceout file] [-trace-format text|jsonl|perfetto]
//
// With no flags it runs both variants under every mitigation mode (the
// Section V-A matrix). -traceout captures the attack's full event
// stream — block dispatches, speculative loads and squashes, cache
// flushes — timed in simulated cycles; with -trace-format perfetto the
// file loads directly in ui.perfetto.dev, making the transient window
// of the attack visible on a timeline.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"ghostbusters"
)

func main() {
	variant := flag.String("variant", "", "v1 | v4 (empty = full matrix)")
	mode := flag.String("mode", "unsafe", "mitigation mode")
	secretHex := flag.String("secret", "", "secret bytes in hex (empty = random)")
	protect := flag.Bool("protect", false, "read-protect the secret region")
	lineflush := flag.Bool("lineflush", false, "line-by-line cache flush (paper's RISC-V variant)")
	traceOut := flag.String("traceout", "", "write the attack's trace event stream to this file")
	traceFormat := flag.String("trace-format", "perfetto", "trace file format: text | jsonl | perfetto")
	flag.Parse()

	cfg := ghostbusters.DefaultConfig()

	if *variant == "" {
		if *traceOut != "" {
			fail(fmt.Errorf("-traceout needs a single run: pick a -variant"))
		}
		table, err := ghostbusters.RunPoCMatrix(cfg)
		fail(err)
		fmt.Print(table)
		return
	}

	var v ghostbusters.AttackVariant
	switch *variant {
	case "v1":
		v = ghostbusters.SpectreV1
	case "v4":
		v = ghostbusters.SpectreV4
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	m, err := ghostbusters.ParseMode(*mode)
	fail(err)

	params := ghostbusters.AttackParams{ProtectSecret: *protect}
	if *lineflush {
		params.Flush = ghostbusters.FlushLineByLine
	}
	if *secretHex != "" {
		b, err := hex.DecodeString(*secretHex)
		fail(err)
		params.Secret = b
	}

	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		traceFile = f
		sink, err := ghostbusters.TraceSinkFor(*traceFormat, f)
		fail(err)
		cfg.Tracer = ghostbusters.NewTracer(ghostbusters.TraceSpec, sink)
	}

	res, err := ghostbusters.RunAttack(v, ghostbusters.WithMitigation(cfg, m), params)
	if cfg.Tracer != nil {
		// Flush even when the attack errored, so a partial trace of the
		// failing run survives for inspection.
		if cerr := cfg.Tracer.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gbspectre: trace:", cerr)
		}
		if cerr := traceFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gbspectre: trace:", cerr)
		}
	}
	fail(err)
	fmt.Printf("%s under %s\n", res.Variant, m)
	fmt.Printf("  secret:    %x\n", res.Secret)
	fmt.Printf("  recovered: %x\n", res.Recovered)
	fmt.Printf("  leaked %d/%d bytes in %d cycles\n", res.BytesCorrect, len(res.Secret), res.Cycles)
	fmt.Printf("  speculative loads %d, MCB recoveries %d, patterns detected %d\n",
		res.Stats.SpecLoads, res.Stats.Recoveries, res.Stats.PatternsFound)
	if res.Success() {
		fmt.Println("  => the secret LEAKED")
	} else {
		fmt.Println("  => the attack FAILED")
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbspectre:", err)
		os.Exit(1)
	}
}
