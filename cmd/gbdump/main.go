// Command gbdump shows what the DBT engine makes of a guest program:
// it runs the program until translation stabilises, then prints the
// translated VLIW code for each hot region and, optionally, the IR
// data-flow graph of a block in Graphviz format with the poison
// analysis overlaid (the paper's Figure 3): poisoned nodes and their
// data edges in red/blue, pinned accesses highlighted, and — under the
// ghostbusters mode — the inserted guard edges rendered as dashed red
// control dependencies.
//
//	gbdump [-mode unsafe|ghostbusters|fence|nospec] [-dot addr]
//	       [-encode] program.s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"ghostbusters"
	"ghostbusters/internal/vliw"
)

func main() {
	mode := flag.String("mode", "unsafe", "mitigation mode")
	dotAt := flag.String("dot", "", "emit the IR DFG at this guest address (hex) as Graphviz")
	encode := flag.Bool("encode", false, "also report binary-encoded block sizes")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gbdump [flags] program.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)
	m, err := ghostbusters.ParseMode(*mode)
	fail(err)
	prog, err := ghostbusters.Assemble(string(src))
	fail(err)

	machine, err := ghostbusters.NewMachine(ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), m))
	fail(err)
	fail(machine.Load(prog))
	res, err := machine.Run()
	fail(err)

	fmt.Printf("guest exited %d after %d cycles; %d blocks, %d traces translated\n\n",
		res.Exit.Code, res.Cycles, res.Stats.Blocks, res.Stats.Traces)

	if *dotAt != "" {
		addr, err := strconv.ParseUint(*dotAt, 0, 64)
		if err != nil {
			fail(fmt.Errorf("-dot: %q is not an address (want hex like 0x10b4)", *dotAt))
		}
		if machine.BlockAt(addr) == nil {
			fmt.Fprintf(os.Stderr, "gbdump: no translated block starts at %#x\n", addr)
			if pcs := machine.TranslatedPCs(); len(pcs) == 0 {
				fmt.Fprintln(os.Stderr, "gbdump: nothing was translated — the program never crossed the hotness threshold")
			} else {
				fmt.Fprintln(os.Stderr, "gbdump: translated entry points:")
				for _, pc := range pcs {
					fmt.Fprintf(os.Stderr, "  %#x%s\n", pc, symbolAt(prog, pc))
				}
			}
			os.Exit(1)
		}
		dot, err := machine.DumpIR(addr)
		fail(err)
		fmt.Println(dot)
		return
	}

	// Walk the text segment for translated entry points, hottest first.
	type region struct {
		pc  uint64
		blk *vliw.Block
	}
	var regions []region
	for pc := prog.TextBase; pc < prog.TextBase+uint64(4*len(prog.Text)); pc += 4 {
		if blk := machine.BlockAt(pc); blk != nil {
			regions = append(regions, region{pc, blk})
		}
	}
	sort.Slice(regions, func(a, b int) bool {
		return regions[a].blk.GuestInsts > regions[b].blk.GuestInsts
	})
	for _, r := range regions {
		fmt.Printf("--- %#x%s (%d guest insts)\n", r.pc, symbolAt(prog, r.pc), r.blk.GuestInsts)
		fmt.Print(r.blk.String())
		if *encode {
			data, err := vliw.EncodeBlock(r.blk)
			fail(err)
			fmt.Printf("    encoded: %d bytes (%.2f bytes/guest inst)\n",
				len(data), float64(len(data))/float64(r.blk.GuestInsts))
		}
		fmt.Println()
	}
}

// symbolAt renders " <name>" when a symbol is defined at pc, else "".
func symbolAt(prog *ghostbusters.Program, pc uint64) string {
	for sym, a := range prog.Symbols {
		if a == pc {
			return " <" + sym + ">"
		}
	}
	return ""
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbdump:", err)
		os.Exit(1)
	}
}
