// Command gbasm is a standalone rv64im assembler / disassembler for the
// guest ISA:
//
//	gbasm program.s            assemble, print the image layout and hex
//	gbasm -d program.s         assemble then disassemble (round trip)
//	gbasm -sym program.s       print the symbol table
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ghostbusters"
	"ghostbusters/internal/riscv"
)

func main() {
	dis := flag.Bool("d", false, "disassemble the assembled text")
	sym := flag.Bool("sym", false, "print the symbol table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gbasm [-d] [-sym] program.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)
	prog, err := ghostbusters.Assemble(string(src))
	fail(err)

	fmt.Printf("text: %#x..%#x (%d instructions)\n", prog.TextBase,
		prog.TextBase+uint64(4*len(prog.Text)), len(prog.Text))
	fmt.Printf("data: %#x..%#x (%d bytes)\n", prog.DataBase,
		prog.DataBase+uint64(len(prog.Data)), len(prog.Data))
	fmt.Printf("entry: %#x\n\n", prog.Entry)

	if *sym {
		type entry struct {
			name string
			addr uint64
		}
		var syms []entry
		for n, a := range prog.Symbols {
			syms = append(syms, entry{n, a})
		}
		sort.Slice(syms, func(a, b int) bool { return syms[a].addr < syms[b].addr })
		for _, s := range syms {
			fmt.Printf("%#010x  %s\n", s.addr, s.name)
		}
		return
	}

	for i, w := range prog.Text {
		pc := prog.TextBase + uint64(4*i)
		if *dis {
			fmt.Printf("%#010x: %08x  %s\n", pc, w, riscv.Disasm(riscv.Decode(w)))
		} else {
			fmt.Printf("%#010x: %08x\n", pc, w)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbasm:", err)
		os.Exit(1)
	}
}
