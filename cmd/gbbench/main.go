// Command gbbench regenerates the paper's evaluation tables:
//
//	gbbench -exp fig4    slowdown of each countermeasure vs unsafe
//	                     execution over the benchmark suite (Figure 4,
//	                     plus the fence variant of Section V-B)
//	gbbench -exp poc     the Section V-A proof-of-concept matrix
//	gbbench -exp ptrmm   the pointer-layout matmul experiment
//	                     (Section V-B, last paragraph)
//	gbbench -exp kernel -kernel gemm -n 24   a single kernel
//
// Matrix experiments (fig4/ptrmm/kernel) fan out over a worker pool:
// -j bounds the pool (default GOMAXPROCS) and -timeout puts a
// wall-clock guard on every individual run. Results are deterministic —
// -j 8 produces byte-identical tables to -j 1, just faster.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/vliw"
)

func main() {
	exp := flag.String("exp", "fig4", "experiment: fig4 | poc | ptrmm | kernel")
	kernel := flag.String("kernel", "gemm", "kernel name for -exp kernel")
	n := flag.Int("n", 0, "problem size override (0 = default)")
	width := flag.Int("width", 4, "VLIW issue width: 2, 4 or 8")
	csv := flag.Bool("csv", false, "machine-readable CSV output (fig4/ptrmm/kernel)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel benchmark jobs (>= 1)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit per benchmark run (0 = none)")
	flag.Parse()

	if *n < 0 {
		usageError("gbbench: -n must be >= 0, got %d", *n)
	}
	if *jobs < 1 {
		usageError("gbbench: -j must be >= 1, got %d", *jobs)
	}
	if *timeout < 0 {
		usageError("gbbench: -timeout must be >= 0, got %v", *timeout)
	}

	base := dbt.DefaultConfig()
	switch *width {
	case 2:
		base.Core = vliw.NarrowConfig()
	case 4:
		base.Core = vliw.DefaultConfig()
	case 8:
		base.Core = vliw.WideConfig()
	default:
		usageError("gbbench: unsupported width %d", *width)
	}

	runner := &harness.Runner{
		Workers:   *jobs,
		Timeout:   *timeout,
		Artifacts: harness.NewArtifacts(),
	}
	ctx := context.Background()

	switch *exp {
	case "fig4":
		start := time.Now()
		rows, err := runner.Fig4(ctx, base, harness.Fig4Modes, *n)
		fail(err)
		// Timing goes to stderr so stdout stays byte-identical at any -j.
		fmt.Fprintf(os.Stderr, "gbbench: %d benchmarks x %d modes on %d workers in %v\n",
			len(rows), len(harness.Fig4Modes), *jobs, time.Since(start).Round(time.Millisecond))
		if *csv {
			fmt.Print(harness.CSV(rows, harness.Fig4Modes))
			return
		}
		fmt.Println("Figure 4 — slowdown vs. unsafe execution (lower is better)")
		fmt.Println("columns: unsafe baseline cycles; then % of unsafe time per countermeasure")
		fmt.Println()
		fmt.Print(harness.FormatRows(rows, harness.Fig4Modes))

	case "poc":
		table, _, err := harness.PoCMatrix(base)
		fail(err)
		fmt.Println("Section V-A — Spectre proof-of-concept matrix")
		fmt.Println()
		fmt.Print(table)

	case "ptrmm":
		k, err := polybench.ByName("matmul-ptr")
		fail(err)
		row, err := runner.RunKernel(ctx, k, *n, base, harness.Fig4Modes)
		fail(err)
		if *csv {
			fmt.Print(harness.CSV([]*harness.Row{row}, harness.Fig4Modes))
			return
		}
		fmt.Println("Section V-B — matmul with array-of-pointer 2-D layout")
		fmt.Println("(the Spectre pattern occurs in the hot loop: fine-grained")
		fmt.Println("mitigation should cost far less than the fence)")
		fmt.Println()
		fmt.Print(harness.FormatRows([]*harness.Row{row}, harness.Fig4Modes))
		gb := row.Stats[core.ModeGhostBusters]
		fmt.Printf("\npatterns detected: %d, risky loads pinned: %d, guard edges: %d\n",
			gb.PatternsFound, gb.RiskyLoads, gb.GuardEdges)

	case "kernel":
		k, err := polybench.ByName(*kernel)
		fail(err)
		row, err := runner.RunKernel(ctx, k, *n, base, harness.Fig4Modes)
		fail(err)
		if *csv {
			fmt.Print(harness.CSV([]*harness.Row{row}, harness.Fig4Modes))
			return
		}
		fmt.Print(harness.FormatRows([]*harness.Row{row}, harness.Fig4Modes))

	default:
		usageError("gbbench: unknown experiment %q", *exp)
	}
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbbench:", err)
		os.Exit(1)
	}
}
