// Command gbbench regenerates the paper's evaluation tables:
//
//	gbbench -exp fig4    slowdown of each countermeasure vs unsafe
//	                     execution over the benchmark suite (Figure 4,
//	                     plus the fence variant of Section V-B)
//	gbbench -exp poc     the Section V-A proof-of-concept matrix
//	gbbench -exp ptrmm   the pointer-layout matmul experiment
//	                     (Section V-B, last paragraph)
//	gbbench -exp kernel -kernel gemm -n 24   a single kernel
//	gbbench -exp detect  score the online attack-phase detector over a
//	                     labeled corpus: every polybench kernel (benign
//	                     negatives) and both Spectre PoCs (positives
//	                     where the scoreboard proves leakage), each under
//	                     every registered mitigation mode. Prints the
//	                     precision/recall/FPR headline and the per-cell
//	                     verdict table; -detect-json writes the scored
//	                     matrix (schema ghostbusters/detect-eval/v1)
//
// Matrix experiments (fig4/ptrmm/kernel) fan out over a worker pool:
// -j bounds the pool (default GOMAXPROCS) and -timeout puts a
// wall-clock guard on every individual run. Results are deterministic —
// -j 8 produces byte-identical tables to -j 1, just faster.
//
// The perf-regression layer rides on the matrix experiments:
//
//	gbbench -exp fig4 -perfjson out.json    record host wall clock and
//	                                        simulated cycles per
//	                                        (benchmark, mode)
//	gbbench -exp fig4 -checkperf base.json  fail (exit 1) if any pair's
//	                                        simulated cycles exceed the
//	                                        baseline's
//
// Each perf JSON entry also embeds the cell's full metrics snapshot
// (the stable-name counters of the observability layer: sim.*, dbt.*,
// core.*, mitigation.*, cache.*, ...) for dashboards and diffing; the
// regression check still compares exactly sim_cycles.
//
// The fault-tolerance layer is exercised with the injection flags:
//
//	gbbench -exp fig4 -inject-translation-rate 0.2 -inject-seed 7 \
//	        -retries 3 -retry-backoff 10ms -tolerate-faults
//
// injects deterministic, seeded translation failures into every run;
// the harness retries faulted cells with a reseeded injector and
// renders cells that stay faulted as "n/a" instead of failing the
// sweep. The backoff before each retry doubles per attempt from
// -retry-backoff, capped at -retry-backoff-max, with deterministic
// jitter seeded by -retry-seed. All injection is off by default.
//
// -spans writes the sweep's host-side span timeline as
// ghostbusters/span/v1 JSONL: the matrix root, one cell span per
// (benchmark, mode) with its retries, backoff sleeps and
// translate/execute split — host wall-clock nanoseconds, riding the
// observability plane, so stdout (and -checkperf) stay byte-identical
// with spans on or off.
//
// Exit codes: 1 for host/benchmark errors, 2 for usage errors, 3 when
// the matrix died on a guest trap (the trap kind, guest PC and cycle
// are printed to stderr), 4 when SIGINT/SIGTERM interrupted the sweep —
// in-flight runs are cancelled through the machines' interrupt hooks
// and the cells that did complete are still written to -perfjson, so a
// long sweep can be stopped without losing its measurements.
//
// -cpuprofile and -memprofile write pprof profiles of the simulator
// itself (go tool pprof), for hunting host-side performance problems.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/detect"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/tcache"
	"ghostbusters/internal/trap"
	"ghostbusters/internal/vliw"
)

// Exit codes for failure modes distinct from host errors (1) and usage
// errors (2).
const (
	exitGuestTrap   = 3 // the matrix died on a guest trap
	exitInterrupted = 4 // SIGINT/SIGTERM cancelled the sweep
)

func main() {
	exp := flag.String("exp", "fig4", "experiment: fig4 | poc | ptrmm | kernel | detect")
	kernel := flag.String("kernel", "gemm", "kernel name for -exp kernel")
	n := flag.Int("n", 0, "problem size override (0 = default)")
	width := flag.Int("width", 4, "VLIW issue width: 2, 4 or 8")
	csv := flag.Bool("csv", false, "machine-readable CSV output (fig4/ptrmm/kernel)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel benchmark jobs (>= 1)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit per benchmark run (0 = none)")
	perfjson := flag.String("perfjson", "", "write per-(benchmark,mode) perf JSON to this file (fig4/ptrmm/kernel)")
	checkperf := flag.String("checkperf", "", "fail on simulated-cycle regressions vs this perf JSON baseline")
	detectJSON := flag.String("detect-json", "", "with -exp detect, write the scored evaluation matrix as JSON to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	retries := flag.Int("retries", 0, "retry attempts per benchmark run after a transient (injected) fault")
	retryBackoff := flag.Duration("retry-backoff", 0, "base pause before the first retry; doubles per attempt, with deterministic jitter")
	retryBackoffMax := flag.Duration("retry-backoff-max", 0, "cap on the per-retry pause (0 = 8x the base)")
	retrySeed := flag.Uint64("retry-seed", 0, "seed for the deterministic backoff jitter")
	tolerateFaults := flag.Bool("tolerate-faults", false, "render persistently faulted cells as n/a instead of failing the sweep")
	injectSeed := flag.Uint64("inject-seed", 0, "fault-injection PRNG seed")
	injectTrans := flag.Float64("inject-translation-rate", 0, "probability a translation attempt is forced to fail (0..1)")
	injectCache := flag.Float64("inject-cache-rate", 0, "probability an architectural access raises a transient cache fault (0..1)")
	injectIntr := flag.Float64("inject-interrupt-rate", 0, "probability per poll window of an injected spurious interrupt (0..1)")
	modesFlag := flag.String("modes", "fig4", `modes to sweep (fig4/ptrmm/kernel): "fig4" (the paper's four), "all" (every registered mitigation), or a comma-separated list of mode names`)
	useTCache := flag.Bool("tcache", false, "persist translated code across runs (default cache dir)")
	tcacheDir := flag.String("tcache-dir", "", "translation cache directory (implies -tcache)")
	spansOut := flag.String("spans", "", "write the host-side span timeline of the sweep (JSONL, schema ghostbusters/span/v1) to this file")
	flag.Parse()

	modes, err := parseModes(*modesFlag)
	if err != nil {
		usageError("gbbench: %v", err)
	}

	if *n < 0 {
		usageError("gbbench: -n must be >= 0, got %d", *n)
	}
	if *jobs < 1 {
		usageError("gbbench: -j must be >= 1, got %d", *jobs)
	}
	if *timeout < 0 {
		usageError("gbbench: -timeout must be >= 0, got %v", *timeout)
	}
	if *retries < 0 {
		usageError("gbbench: -retries must be >= 0, got %d", *retries)
	}
	for _, r := range []struct {
		name string
		val  float64
	}{
		{"-inject-translation-rate", *injectTrans},
		{"-inject-cache-rate", *injectCache},
		{"-inject-interrupt-rate", *injectIntr},
	} {
		if r.val < 0 || r.val > 1 {
			usageError("gbbench: %s must be in [0, 1], got %v", r.name, r.val)
		}
	}

	startProfiles(*cpuprofile, *memprofile)
	defer flushProfiles()

	base := dbt.DefaultConfig()
	switch *width {
	case 2:
		base.Core = vliw.NarrowConfig()
	case 4:
		base.Core = vliw.DefaultConfig()
	case 8:
		base.Core = vliw.WideConfig()
	default:
		usageError("gbbench: unsupported width %d", *width)
	}

	if *injectTrans > 0 || *injectCache > 0 || *injectIntr > 0 {
		base.FaultInject = &dbt.FaultInject{
			Seed:                   *injectSeed,
			TranslationFailureRate: *injectTrans,
			CacheFaultRate:         *injectCache,
			SpuriousInterruptRate:  *injectIntr,
		}
	}

	var transCache *tcache.Cache
	if *useTCache || *tcacheDir != "" {
		dir := *tcacheDir
		if dir == "" {
			dir, err = tcache.DefaultDir()
			fail(err)
		}
		transCache = tcache.New(dir)
		// Cache effectiveness goes to stderr at exit; stdout stays
		// byte-identical with the cache off (the -checkperf contract).
		defer func() {
			hits, misses, persisted := transCache.Stats()
			fmt.Fprintf(os.Stderr, "gbbench: tcache: %d hits, %d misses, %d documents written\n",
				hits, misses, persisted)
			if err := transCache.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "gbbench: warning:", err)
			}
		}()
	}

	// The host-side span layer captures the sweep's timeline: one
	// "matrix" root with a per-cell tree underneath (queue, backoff,
	// attempts, translate/execute splits). Spans ride the observability
	// plane — stdout stays byte-identical with them on or off.
	root := startSpans(*spansOut, *exp)
	defer closeSpans()

	runner := &harness.Runner{
		Workers:        *jobs,
		Timeout:        *timeout,
		Artifacts:      harness.NewArtifacts(),
		Retries:        *retries,
		Backoff:        *retryBackoff,
		BackoffMax:     *retryBackoffMax,
		BackoffSeed:    *retrySeed,
		TolerateFaults: *tolerateFaults,
		TransCache:     transCache,
		Span:           root,
	}
	// SIGINT/SIGTERM cancel the sweep: every in-flight machine is
	// stopped through its interrupt hook, the harness returns the cells
	// that completed, and checkInterrupted below persists them before
	// exiting with the distinct code.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// perfOut records and/or checks the perf JSON for a matrix result.
	// The current report is always written before the baseline check, so
	// CI can upload the measurement even from a failing run.
	perfOut := func(rows []*harness.Row) {
		if *perfjson == "" && *checkperf == "" {
			return
		}
		rep := harness.PerfFromRows(rows, modes)
		if *perfjson != "" {
			fail(rep.WriteFile(*perfjson))
		}
		if *checkperf != "" {
			baseline, err := harness.ReadPerf(*checkperf)
			fail(err)
			fail(harness.CheckPerf(rep, baseline))
		}
	}

	// checkInterrupted recognises a signal-cancelled sweep: the cells
	// that completed are still written to -perfjson (never judged with
	// -checkperf — a partial sweep cannot be compared to a baseline), a
	// note goes to stderr, and the process exits with the interruption
	// code.
	checkInterrupted := func(rows []*harness.Row, err error) {
		if err == nil || (ctx.Err() == nil && !errors.Is(err, dbt.ErrInterrupted)) {
			return
		}
		flushProfiles()
		closeSpans()
		cells := 0
		for _, r := range rows {
			cells += len(r.Cycles)
		}
		if *perfjson != "" && len(rows) > 0 {
			if werr := harness.PerfFromRows(rows, modes).WriteFile(*perfjson); werr != nil {
				fmt.Fprintln(os.Stderr, "gbbench:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "gbbench: partial perf report (%d completed cells) written to %s\n", cells, *perfjson)
			}
		}
		fmt.Fprintf(os.Stderr, "gbbench: interrupted with %d completed cells: %v\n", cells, err)
		os.Exit(exitInterrupted)
	}

	switch *exp {
	case "fig4":
		start := time.Now()
		rows, err := runner.Fig4(ctx, base, modes, *n)
		checkInterrupted(rows, err)
		fail(err)
		// Timing goes to stderr so stdout stays byte-identical at any -j.
		fmt.Fprintf(os.Stderr, "gbbench: %d benchmarks x %d modes on %d workers in %v\n",
			len(rows), len(modes), *jobs, time.Since(start).Round(time.Millisecond))
		perfOut(rows)
		if *csv {
			fmt.Print(harness.CSV(rows, modes))
			return
		}
		fmt.Println("Figure 4 — slowdown vs. unsafe execution (lower is better)")
		fmt.Println("columns: unsafe baseline cycles; then % of unsafe time per countermeasure")
		fmt.Println()
		fmt.Print(harness.FormatRows(rows, modes))

	case "poc":
		table, _, err := harness.PoCMatrix(base)
		fail(err)
		fmt.Println("Section V-A — Spectre proof-of-concept matrix")
		fmt.Println()
		fmt.Print(table)

	case "ptrmm":
		k, err := polybench.ByName("matmul-ptr")
		fail(err)
		row, err := runner.RunKernel(ctx, k, *n, base, modes)
		checkInterrupted(rowSlice(row), err)
		fail(err)
		perfOut([]*harness.Row{row})
		if *csv {
			fmt.Print(harness.CSV([]*harness.Row{row}, modes))
			return
		}
		fmt.Println("Section V-B — matmul with array-of-pointer 2-D layout")
		fmt.Println("(the Spectre pattern occurs in the hot loop: fine-grained")
		fmt.Println("mitigation should cost far less than the fence)")
		fmt.Println()
		fmt.Print(harness.FormatRows([]*harness.Row{row}, modes))
		if gb, ok := row.Stats[core.ModeGhostBusters]; ok {
			fmt.Printf("\npatterns detected: %d, risky loads pinned: %d, guard edges: %d\n",
				gb.PatternsFound, gb.RiskyLoads, gb.GuardEdges)
		}

	case "detect":
		// -modes only narrows the matrix when set explicitly; the
		// default detect corpus spans every registered mitigation.
		var evalModes []core.Mode
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "modes" {
				evalModes = modes
			}
		})
		start := time.Now()
		doc, err := detect.Eval(ctx, base, detect.EvalConfig{
			Workers: *jobs,
			Timeout: *timeout,
			Retries: *retries,
			Backoff: *retryBackoff,
			KernelN: *n,
			Modes:   evalModes,
		})
		if ctx.Err() != nil || errors.Is(err, dbt.ErrInterrupted) {
			flushProfiles()
			closeSpans()
			fmt.Fprintln(os.Stderr, "gbbench: interrupted:", err)
			os.Exit(exitInterrupted)
		}
		fail(err)
		fmt.Fprintf(os.Stderr, "gbbench: detect eval: %d cells on %d workers in %v\n",
			doc.Summary.Cells, *jobs, time.Since(start).Round(time.Millisecond))
		if *detectJSON != "" {
			out, err := doc.JSON()
			fail(err)
			fail(os.WriteFile(*detectJSON, out, 0o644))
		}
		fmt.Print(doc.Table())

	case "kernel":
		k, err := polybench.ByName(*kernel)
		fail(err)
		row, err := runner.RunKernel(ctx, k, *n, base, modes)
		checkInterrupted(rowSlice(row), err)
		fail(err)
		perfOut([]*harness.Row{row})
		if *csv {
			fmt.Print(harness.CSV([]*harness.Row{row}, modes))
			return
		}
		fmt.Print(harness.FormatRows([]*harness.Row{row}, modes))

	default:
		usageError("gbbench: unknown experiment %q", *exp)
	}
}

// The span layer's state, closed exactly once on every exit path
// (os.Exit skips defers, so fail and the interrupt paths close
// explicitly, like the profiles).
var (
	spanTracer *hspan.Tracer
	spanRoot   hspan.Span
	spanFile   *os.File
)

// startSpans opens the sweep's span timeline when -spans is set. The
// returned root is the zero Span otherwise — the runner's span hooks
// stay wired at zero cost.
func startSpans(path, exp string) hspan.Span {
	if path == "" {
		return hspan.Span{}
	}
	f, err := os.Create(path)
	fail(err)
	spanFile = f
	spanTracer = hspan.New(hspan.NewJSONLSink(f))
	spanRoot = spanTracer.Start("matrix", hspan.Str("exp", exp))
	return spanRoot
}

// closeSpans ends the root span and flushes the JSONL stream; safe to
// call on every exit path, at most once effective.
func closeSpans() {
	if spanTracer == nil {
		return
	}
	spanRoot.End()
	if err := spanTracer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gbbench: spans:", err)
	}
	spanTracer = nil
	if err := spanFile.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gbbench: spans:", err)
	}
	spanFile = nil
}

// rowSlice lifts a possibly-nil single row into the slice shape the
// partial-result paths want.
func rowSlice(row *harness.Row) []*harness.Row {
	if row == nil {
		return nil
	}
	return []*harness.Row{row}
}

// parseModes resolves the -modes flag: the two named sweeps, or an
// explicit comma-separated list of mitigation names.
func parseModes(s string) ([]core.Mode, error) {
	switch s {
	case "fig4":
		return harness.Fig4Modes, nil
	case "all":
		return harness.AllModes(), nil
	}
	var modes []core.Mode
	seen := map[core.Mode]bool{}
	for _, name := range strings.Split(s, ",") {
		m, err := core.ParseMode(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if seen[m] {
			return nil, fmt.Errorf("-modes lists %s twice", m)
		}
		seen[m] = true
		modes = append(modes, m)
	}
	return modes, nil
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// fail flushes any in-flight profiles before exiting: os.Exit skips
// deferred calls, and a truncated CPU profile is worse than none. A
// guest trap in the error chain gets structured diagnostics and its own
// exit code.
func fail(err error) {
	if err == nil {
		return
	}
	flushProfiles()
	closeSpans()
	fmt.Fprintln(os.Stderr, "gbbench:", err)
	if f := trap.As(err); f != nil {
		fmt.Fprintf(os.Stderr, "gbbench: guest trap: kind=%s pc=%#x addr=%#x cycle=%d\n",
			f.Kind, f.PC, f.Addr, f.Cycle)
		os.Exit(exitGuestTrap)
	}
	os.Exit(1)
}

var (
	cpuProfileFile  *os.File
	memProfilePath  string
	profilesFlushed bool
)

func startProfiles(cpu, mem string) {
	memProfilePath = mem
	if cpu != "" {
		f, err := os.Create(cpu)
		fail(err)
		cpuProfileFile = f
		fail(pprof.StartCPUProfile(f))
	}
}

func flushProfiles() {
	if profilesFlushed {
		return
	}
	profilesFlushed = true
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gbbench:", err)
			return
		}
		defer f.Close()
		runtime.GC() // one final collection for accurate live-heap numbers
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gbbench:", err)
		}
	}
}
