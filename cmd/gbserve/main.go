// Command gbserve runs the simulation service: a long-running daemon
// that accepts guest programs and experiment specs over HTTP/JSON and
// executes them on a bounded worker fleet with per-tenant quotas.
//
//	gbserve [-addr :8433] [-workers N] [-job-parallelism N] [-queue N]
//	        [-job-timeout 60s] [-drain-timeout 10s]
//	        [-quota-inflight N] [-quota-cycles N] [-quota-mem N]
//	        [-tenant name=inflight:cycles:mem ...]
//	        [-retries N] [-retry-backoff d] [-retry-backoff-max d]
//	        [-retry-seed N] [-tcache] [-tcache-dir dir] [-width 2|4|8]
//	        [-spans file] [-pprof 127.0.0.1:6060]
//
// API (see internal/serve):
//
//	POST   /v1/jobs             submit a job ({"tenant": ..., "kind":
//	                            "run"|"kernel"|"fig4", ...}); ?wait=1
//	                            blocks until the job is terminal
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/output rendered output (byte-identical to the
//	                            gbbench/gbrun stdout for the same work)
//	GET    /v1/jobs/{id}/events live NDJSON progress stream
//	GET    /v1/jobs/{id}/trace  the job's host-span tree (span/v1 NDJSON)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz /readyz /metrics
//
// Admission rejections are structured: 429 + Retry-After when the
// tenant's in-flight cap or the global queue is hit, 403 when a cycle
// or memory budget is exhausted, 503 while draining.
//
// SIGINT/SIGTERM starts a graceful drain: admission stops (readyz goes
// 503 for load balancers), running and queued jobs get -drain-timeout
// to finish, stragglers are cancelled through their contexts (the
// machine's interrupt hook, so guest memory is released), and the
// process exits 0 once the fleet is idle. A second signal kills the
// process immediately.
//
// -spans streams every job's host-side span tree (admission, queue
// wait, attempts with translate/execute splits, the final drain) to a
// ghostbusters/span/v1 JSONL file. Latency histograms (queue wait, job
// wall time, per-cell host time) are always collected and exposed on
// /metrics in Prometheus histogram exposition, spans file or not.
//
// -pprof serves net/http/pprof on a second, loopback-only listener.
// The profiling surface is never mounted on the public API mux, and
// gbserve refuses to start if the address does not resolve to a
// loopback interface.
//
// All logging goes to stderr; stdout is never written (ops can pipe it
// safely).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	httppprof "net/http/pprof"

	"ghostbusters/internal/dbt"
	"ghostbusters/internal/hspan"
	"ghostbusters/internal/serve"
	"ghostbusters/internal/tcache"
	"ghostbusters/internal/vliw"
)

func main() {
	addr := flag.String("addr", ":8433", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "job-fleet size (concurrently executing jobs)")
	jobPar := flag.Int("job-parallelism", 2, "harness workers inside one sweep job")
	queue := flag.Int("queue", 64, "admission queue depth (full queue sheds 429 + Retry-After)")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "default and maximum per-job deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight jobs on SIGTERM before cancellation")
	quotaInflight := flag.Int("quota-inflight", 8, "default per-tenant cap on queued+running jobs (-1 = unlimited)")
	quotaCycles := flag.Uint64("quota-cycles", 0, "default per-tenant cumulative simulated-cycle budget (0 = unlimited)")
	quotaMem := flag.Uint64("quota-mem", 0, "default per-tenant cumulative guest-memory budget in bytes (0 = unlimited)")
	retries := flag.Int("retries", 0, "default transient-fault retries per run")
	retryBackoff := flag.Duration("retry-backoff", 10*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	retryBackoffMax := flag.Duration("retry-backoff-max", 0, "retry backoff cap (0 = 8x base)")
	retrySeed := flag.Uint64("retry-seed", 0, "deterministic jitter seed")
	useTCache := flag.Bool("tcache", false, "share a persistent translation cache across jobs and tenants (default cache dir)")
	tcacheDir := flag.String("tcache-dir", "", "translation cache directory (implies -tcache)")
	width := flag.Int("width", 4, "VLIW issue width: 2, 4 or 8")
	spansOut := flag.String("spans", "", "write the fleet's host-side span timeline (JSONL, schema ghostbusters/span/v1) to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060); never mounted on the public API")

	tenants := map[string]serve.Quota{}
	flag.Func("tenant", "per-tenant quota `name=inflight:cycles:mem` (repeatable; 0 = unlimited, inflight -1 = unlimited)", func(v string) error {
		name, q, err := parseTenant(v)
		if err != nil {
			return err
		}
		tenants[name] = q
		return nil
	})
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: gbserve [flags]")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)

	base := dbt.DefaultConfig()
	switch *width {
	case 2:
		base.Core = vliw.NarrowConfig()
	case 4:
		base.Core = vliw.DefaultConfig()
	case 8:
		base.Core = vliw.WideConfig()
	default:
		logger.Fatalf("gbserve: unsupported width %d", *width)
	}

	var transCache *tcache.Cache
	if *useTCache || *tcacheDir != "" {
		dir := *tcacheDir
		if dir == "" {
			var err error
			dir, err = tcache.DefaultDir()
			if err != nil {
				logger.Fatalf("gbserve: %v", err)
			}
		}
		transCache = tcache.New(dir)
		logger.Printf("gbserve: translation cache at %s (shared across tenants)", dir)
	}

	// The fleet's host-side span timeline: admission decisions, queue
	// waits, attempts and drain, one job tree per admitted job. The
	// tracer is concurrency-safe; the file closes after the drain so the
	// drain span itself is captured.
	var spanTracer *hspan.Tracer
	var spanFile *os.File
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			logger.Fatalf("gbserve: %v", err)
		}
		spanFile = f
		spanTracer = hspan.New(hspan.NewJSONLSink(f))
		logger.Printf("gbserve: span timeline to %s", *spansOut)
	}

	// pprof lives on its own loopback-only listener: the profiling
	// surface (heap contents, CPU samples, symbol tables) must never be
	// reachable through the public API address.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			logger.Fatalf("gbserve: pprof: %v", err)
		}
		if tcpAddr, ok := pln.Addr().(*net.TCPAddr); !ok || !tcpAddr.IP.IsLoopback() {
			logger.Fatalf("gbserve: pprof: %s is not a loopback address; refusing to expose profiles", pln.Addr())
		}
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", httppprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() {
			if err := http.Serve(pln, pprofMux); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Printf("gbserve: pprof: %v", err)
			}
		}()
		logger.Printf("gbserve: pprof on http://%s/debug/pprof/ (loopback only)", pln.Addr())
	}

	s, err := serve.New(serve.Config{
		Base:           &base,
		Workers:        *workers,
		JobParallelism: *jobPar,
		QueueDepth:     *queue,
		DefaultQuota: serve.Quota{
			MaxInFlight: *quotaInflight,
			CycleBudget: *quotaCycles,
			MemBudget:   *quotaMem,
		},
		Tenants:      tenants,
		JobTimeout:   *jobTimeout,
		DrainTimeout: *drainTimeout,
		Retries:      *retries,
		Backoff:      *retryBackoff,
		BackoffMax:   *retryBackoffMax,
		BackoffSeed:  *retrySeed,
		TransCache:   transCache,
		Spans:        spanTracer,
		Log:          logger,
	})
	if err != nil {
		logger.Fatalf("gbserve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("gbserve: %v", err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("gbserve: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		logger.Fatalf("gbserve: %v", err)
	}
	stop() // a second signal now kills the process the default way
	logger.Printf("gbserve: signal received, draining (grace %v)", *drainTimeout)

	// Drain the fleet first — the HTTP server stays up so status polls
	// and metrics scrapes keep working while jobs finish — then close
	// the listener.
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+30*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		logger.Printf("gbserve: drain: %v", err)
	}
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("gbserve: http shutdown: %v", err)
	}
	if transCache != nil {
		if err := transCache.Err(); err != nil {
			logger.Printf("gbserve: warning: %v", err)
		}
	}
	if spanTracer != nil {
		if err := spanTracer.Close(); err != nil {
			logger.Printf("gbserve: spans: %v", err)
		}
		if err := spanFile.Close(); err != nil {
			logger.Printf("gbserve: spans: %v", err)
		}
	}
	logger.Printf("gbserve: bye")
}

// parseTenant parses one -tenant spec: name=inflight:cycles:mem.
func parseTenant(v string) (string, serve.Quota, error) {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return "", serve.Quota{}, fmt.Errorf("want name=inflight:cycles:mem, got %q", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return "", serve.Quota{}, fmt.Errorf("want name=inflight:cycles:mem, got %q", v)
	}
	inflight, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", serve.Quota{}, fmt.Errorf("bad inflight in %q: %v", v, err)
	}
	cycles, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return "", serve.Quota{}, fmt.Errorf("bad cycle budget in %q: %v", v, err)
	}
	mem, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return "", serve.Quota{}, fmt.Errorf("bad mem budget in %q: %v", v, err)
	}
	return name, serve.Quota{MaxInFlight: inflight, CycleBudget: cycles, MemBudget: mem}, nil
}
