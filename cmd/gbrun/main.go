// Command gbrun assembles and runs an rv64im guest program on the
// simulated DBT-based processor:
//
//	gbrun [-mode unsafe|ghostbusters|fence|nospec] [-width 2|4|8]
//	      [-interp] [-stats] program.s
//
// The exit status is the guest's exit code.
package main

import (
	"flag"
	"fmt"
	"os"

	"ghostbusters"
	"ghostbusters/internal/vliw"
)

func main() {
	mode := flag.String("mode", "unsafe", "mitigation: unsafe | ghostbusters | fence | nospec")
	width := flag.Int("width", 4, "VLIW issue width: 2, 4 or 8")
	interp := flag.Bool("interp", false, "interpreter only (no translation)")
	stats := flag.Bool("stats", false, "print machine statistics")
	trace := flag.Bool("trace", false, "log every block dispatch and taken branch to stderr")
	profile := flag.Bool("profile", false, "print the hottest translated regions")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gbrun [flags] program.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)

	m, err := ghostbusters.ParseMode(*mode)
	fail(err)
	cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), m)
	switch *width {
	case 2:
		cfg.Core = vliw.NarrowConfig()
	case 4:
	case 8:
		cfg.Core = vliw.WideConfig()
	default:
		fail(fmt.Errorf("unsupported width %d", *width))
	}
	cfg.DisableTranslation = *interp
	if *trace {
		cfg.Trace = os.Stderr
	}

	prog, err := ghostbusters.Assemble(string(src))
	fail(err)
	machine, err := ghostbusters.NewMachine(cfg)
	fail(err)
	fail(machine.Load(prog))
	res, err := machine.Run()
	fail(err)

	fmt.Printf("exit=%d cycles=%d instret=%d\n", res.Exit.Code, res.Cycles, res.Instret)
	if *profile {
		fmt.Println("hottest translated regions:")
		for i, r := range machine.ProfileReport() {
			if i >= 10 {
				break
			}
			kind := "block"
			if r.IsTrace {
				kind = "trace"
			}
			fmt.Printf("  %#010x %-6s %8d dispatches, %3d insts in %3d bundles\n",
				r.PC, kind, r.Entries, r.GuestInsts, r.Bundles)
		}
	}
	if *stats {
		s := res.Stats
		fmt.Printf("interp-insts=%d blocks=%d traces=%d block-execs=%d bundles=%d\n",
			s.InterpInsts, s.Blocks, s.Traces, s.BlockExecs, s.Bundles)
		fmt.Printf("spec-loads=%d squashed=%d recoveries=%d side-exits=%d\n",
			s.SpecLoads, s.SpecSquash, s.Recoveries, s.SideExits)
		fmt.Printf("patterns=%d risky-loads=%d guard-edges=%d compile-errors=%d\n",
			s.PatternsFound, s.RiskyLoads, s.GuardEdges, s.CompileErrs)
	}
	os.Exit(int(res.Exit.Code))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gbrun:", err)
		os.Exit(1)
	}
}
