// Command gbrun assembles and runs an rv64im guest program on the
// simulated DBT-based processor:
//
//	gbrun [-mode unsafe|ghostbusters|fence|nospec] [-width 2|4|8]
//	      [-interp] [-stats] program.s
//
// The exit status is the guest's exit code when the guest runs to
// completion. Failures use distinct codes:
//
//	1  host-side error (unreadable file, assembly error, bad config)
//	2  usage error
//	3  guest trap (illegal instruction, wild jump, out-of-range access,
//	   cycle-budget exhaustion, ...) — the trap kind, guest PC, faulting
//	   address and cycle count are printed to stderr
//
// -cpuprofile and -memprofile write pprof profiles of the simulator
// itself (host-side performance, not guest cycles).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ghostbusters"
	"ghostbusters/internal/vliw"
)

// exitGuestTrap is the exit code for a structured guest trap, distinct
// from host errors (1) and usage errors (2).
const exitGuestTrap = 3

func main() {
	mode := flag.String("mode", "unsafe", "mitigation: unsafe | ghostbusters | fence | nospec")
	width := flag.Int("width", 4, "VLIW issue width: 2, 4 or 8")
	interp := flag.Bool("interp", false, "interpreter only (no translation)")
	stats := flag.Bool("stats", false, "print machine statistics")
	trace := flag.Bool("trace", false, "log every block dispatch and taken branch to stderr")
	profile := flag.Bool("profile", false, "print the hottest translated regions")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gbrun [flags] program.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)

	startProfiles(*cpuprofile, *memprofile)

	m, err := ghostbusters.ParseMode(*mode)
	fail(err)
	cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), m)
	switch *width {
	case 2:
		cfg.Core = vliw.NarrowConfig()
	case 4:
	case 8:
		cfg.Core = vliw.WideConfig()
	default:
		fail(fmt.Errorf("unsupported width %d", *width))
	}
	cfg.DisableTranslation = *interp
	if *trace {
		cfg.Trace = os.Stderr
	}

	prog, err := ghostbusters.Assemble(string(src))
	fail(err)
	machine, err := ghostbusters.NewMachine(cfg)
	fail(err)
	fail(machine.Load(prog))
	res, err := machine.Run()
	if err != nil {
		flushProfiles()
		if f := ghostbusters.AsFault(err); f != nil {
			fmt.Fprintf(os.Stderr, "gbrun: guest trap: %s\n", f.Kind)
			fmt.Fprintf(os.Stderr, "gbrun:   %s\n", f.Detail)
			fmt.Fprintf(os.Stderr, "gbrun:   pc=%#x addr=%#x cycle=%d\n", f.PC, f.Addr, f.Cycle)
			if f.Block != 0 {
				fmt.Fprintf(os.Stderr, "gbrun:   in translated region @%#x\n", f.Block)
			}
			os.Exit(exitGuestTrap)
		}
		fmt.Fprintln(os.Stderr, "gbrun:", err)
		os.Exit(1)
	}

	fmt.Printf("exit=%d cycles=%d instret=%d\n", res.Exit.Code, res.Cycles, res.Instret)
	if *profile {
		fmt.Println("hottest translated regions:")
		for i, r := range machine.ProfileReport() {
			if i >= 10 {
				break
			}
			kind := "block"
			if r.IsTrace {
				kind = "trace"
			}
			fmt.Printf("  %#010x %-6s %8d dispatches, %3d insts in %3d bundles\n",
				r.PC, kind, r.Entries, r.GuestInsts, r.Bundles)
		}
	}
	if *stats {
		s := res.Stats
		fmt.Printf("interp-insts=%d blocks=%d traces=%d block-execs=%d bundles=%d\n",
			s.InterpInsts, s.Blocks, s.Traces, s.BlockExecs, s.Bundles)
		fmt.Printf("spec-loads=%d squashed=%d recoveries=%d side-exits=%d\n",
			s.SpecLoads, s.SpecSquash, s.Recoveries, s.SideExits)
		fmt.Printf("patterns=%d risky-loads=%d guard-edges=%d compile-errors=%d\n",
			s.PatternsFound, s.RiskyLoads, s.GuardEdges, s.CompileErrs)
		fmt.Printf("traps=%s\n", s.Traps.String())
	}
	// os.Exit skips deferred calls, so profiles are flushed explicitly
	// before propagating the guest's exit code.
	flushProfiles()
	os.Exit(int(res.Exit.Code))
}

func fail(err error) {
	if err != nil {
		flushProfiles()
		fmt.Fprintln(os.Stderr, "gbrun:", err)
		os.Exit(1)
	}
}

var (
	cpuProfileFile  *os.File
	memProfilePath  string
	profilesFlushed bool
)

func startProfiles(cpu, mem string) {
	memProfilePath = mem
	if cpu != "" {
		f, err := os.Create(cpu)
		fail(err)
		cpuProfileFile = f
		fail(pprof.StartCPUProfile(f))
	}
}

func flushProfiles() {
	if profilesFlushed {
		return
	}
	profilesFlushed = true
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gbrun:", err)
			return
		}
		defer f.Close()
		runtime.GC() // one final collection for accurate live-heap numbers
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gbrun:", err)
		}
	}
}
