// Command gbrun assembles and runs an rv64im guest program on the
// simulated DBT-based processor:
//
//	gbrun [-mode unsafe|ghostbusters|fence|nospec] [-width 2|4|8]
//	      [-interp] [-stats] [-json] [-trace] [-traceout file]
//	      [-trace-format text|jsonl|perfetto] [-profile]
//	      [-audit] [-audit-json file]
//	      [-detect] [-detect-json file] [-spans file]
//	      [-tcache] [-tcache-dir dir] program.s
//
// The exit status is the guest's exit code when the guest runs to
// completion. Failures use distinct codes:
//
//	1  host-side error (unreadable file, assembly error, bad config)
//	2  usage error
//	3  guest trap (illegal instruction, wild jump, out-of-range access,
//	   cycle-budget exhaustion, ...) — the trap kind, guest PC, faulting
//	   address and cycle count are printed to stderr
//	4  interrupted by SIGINT/SIGTERM — the in-flight run is cancelled
//	   through the machine's interrupt hook and any -traceout stream is
//	   flushed before exiting, so a partial trace of the cancelled run
//	   survives
//
// -trace logs block dispatches and taken interpreter branches to stderr
// in the classic human-readable line format. -traceout writes the full
// event stream (including per-speculative-load events) to a file in the
// format chosen by -trace-format; "perfetto" produces a Chrome
// trace-event JSON loadable in ui.perfetto.dev, timed in simulated
// cycles. The two compose: both sinks see the same stream.
//
// -audit turns on the leakage audit layer: the translator records a
// provenance chain for every load it analyzes (which speculative load
// poisoned its address, along which data-flow path, under which guard)
// and gbrun prints the machine-wide explainability table after the run.
// -audit-json writes the same audit as a stable JSON document (schema
// ghostbusters/audit/v1); either flag enables collection. Auditing only
// costs translation time — the generated code is identical.
//
// -detect attaches the online attack-phase detector to the run's event
// stream and prints its verdict: whether the run showed the
// Flush+Reload shape (prime→trigger rounds over distinct cache lines),
// with the inferred phase timeline. -detect-json writes the verdict as
// a stable JSON document (schema ghostbusters/detect/v1); either flag
// enables detection. Detection composes with -traceout — the detector
// rides the same stream as the trace file behind a tee, and the
// inferred phase/rounds/alarm tracks are appended to the trace so a
// Perfetto timeline shows the detection overlaid on the raw counters.
//
// -spans writes the host-side span timeline (assemble, load, run with
// its translate/execute split) as ghostbusters/span/v1 JSONL — host
// wall-clock nanoseconds, a second clock domain next to the simulated
// cycles. With `-traceout file -trace-format perfetto` the spans are
// also mirrored into the same Perfetto document as a separate process
// track, so one ui.perfetto.dev load shows the guest-cycle and host-ns
// timelines together.
//
// -tcache persists translated regions across runs (in the user cache
// dir, or under -tcache-dir): a warm run of the same program and
// configuration compiles nothing — `-stats -json` reports
// dbt.translations = 0 — while every guest-visible number stays
// bit-identical to a cold run.
//
// -cpuprofile and -memprofile write pprof profiles of the simulator
// itself (host-side performance, not guest cycles).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"ghostbusters"
	"ghostbusters/internal/tcache"
	"ghostbusters/internal/vliw"
)

// Exit codes for the failure modes distinct from host errors (1) and
// usage errors (2).
const (
	exitGuestTrap   = 3 // structured guest trap
	exitInterrupted = 4 // cancelled by SIGINT/SIGTERM
)

func main() {
	mode := flag.String("mode", "unsafe", "mitigation: unsafe | ghostbusters | fence | nospec")
	width := flag.Int("width", 4, "VLIW issue width: 2, 4 or 8")
	interp := flag.Bool("interp", false, "interpreter only (no translation)")
	stats := flag.Bool("stats", false, "print machine statistics")
	jsonOut := flag.Bool("json", false, "with -stats, print the metrics snapshot as JSON instead of text")
	trace := flag.Bool("trace", false, "log every block dispatch and taken branch to stderr")
	traceOut := flag.String("traceout", "", "write the trace event stream to this file")
	traceFormat := flag.String("trace-format", "perfetto", "trace file format: text | jsonl | perfetto")
	profile := flag.Bool("profile", false, "print the hottest translated regions by attributed cycles")
	audit := flag.Bool("audit", false, "collect poison provenance and print the audit table")
	auditJSON := flag.String("audit-json", "", "write the audit as JSON (schema ghostbusters/audit/v1) to this file")
	detectFlag := flag.Bool("detect", false, "run the online attack-phase detector and print its verdict")
	detectJSON := flag.String("detect-json", "", "write the detection verdict as JSON (schema ghostbusters/detect/v1) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	useTCache := flag.Bool("tcache", false, "persist translated code across runs (default cache dir)")
	tcacheDir := flag.String("tcache-dir", "", "translation cache directory (implies -tcache)")
	spansOut := flag.String("spans", "", "write the host-side span timeline (JSONL, schema ghostbusters/span/v1) to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gbrun [flags] program.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)

	startProfiles(*cpuprofile, *memprofile)

	m, err := ghostbusters.ParseMode(*mode)
	fail(err)
	cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), m)
	switch *width {
	case 2:
		cfg.Core = vliw.NarrowConfig()
	case 4:
	case 8:
		cfg.Core = vliw.WideConfig()
	default:
		fail(fmt.Errorf("unsupported width %d", *width))
	}
	cfg.DisableTranslation = *interp
	cfg.Audit = *audit || *auditJSON != ""
	var detector *ghostbusters.Detector
	if *detectFlag || *detectJSON != "" {
		detector = ghostbusters.NewDetector(ghostbusters.DetectConfig{})
	}
	cfg.Tracer = buildTracer(*trace, *traceOut, *traceFormat, detector)
	root := buildSpans(*spansOut)
	transCache := buildTransCache(*useTCache, *tcacheDir)
	cfg.TransCache = transCache

	// SIGINT/SIGTERM cancel the run through the machine's interrupt
	// hook: the dispatch loop notices within one poll window, Run
	// returns ErrInterrupted, and the trace/profile sinks are flushed
	// before the distinct exit code.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Interrupt = ctx.Done()

	as := root.Child("assemble", ghostbusters.SpanStr("file", flag.Arg(0)))
	prog, err := ghostbusters.Assemble(string(src))
	as.End()
	fail(err)
	machine, err := ghostbusters.NewMachine(cfg)
	fail(err)
	ls := root.Child("load")
	fail(machine.Load(prog))
	ls.End()
	rs := root.Child("run", ghostbusters.SpanStr("mode", *mode))
	res, err := machine.Run()
	endRunSpan(rs, machine)
	if err != nil {
		shutdown()
		if errors.Is(err, ghostbusters.ErrInterrupted) {
			fmt.Fprintf(os.Stderr, "gbrun: interrupted: %v\n", err)
			fmt.Fprintf(os.Stderr, "gbrun: partial trace and profiles flushed\n")
			os.Exit(exitInterrupted)
		}
		if f := ghostbusters.AsFault(err); f != nil {
			fmt.Fprintf(os.Stderr, "gbrun: guest trap: %s\n", f.Kind)
			fmt.Fprintf(os.Stderr, "gbrun:   %s\n", f.Detail)
			fmt.Fprintf(os.Stderr, "gbrun:   pc=%#x addr=%#x cycle=%d\n", f.PC, f.Addr, f.Cycle)
			if f.Block != 0 {
				fmt.Fprintf(os.Stderr, "gbrun:   in translated region @%#x\n", f.Block)
			}
			os.Exit(exitGuestTrap)
		}
		fmt.Fprintln(os.Stderr, "gbrun:", err)
		os.Exit(1)
	}

	fmt.Printf("exit=%d cycles=%d instret=%d\n", res.Exit.Code, res.Cycles, res.Instret)
	if *profile {
		printProfile(machine, res.Cycles)
	}
	if cfg.Audit {
		writeAudit(machine.Audit(), *audit, *auditJSON)
	}
	var detectRep *ghostbusters.DetectReport
	if detector != nil {
		// Flush the stream tail into the detector, take the verdict,
		// then append the inferred phase/rounds/alarm tracks to the
		// still-open trace so they land in the -traceout file.
		_ = cfg.Tracer.Flush()
		detectRep = detector.Report()
		detectRep.EmitTracks(cfg.Tracer)
		if *detectFlag {
			fmt.Print(detectRep.Format())
		}
		if *detectJSON != "" {
			out, err := detectRep.JSON()
			fail(err)
			fail(os.WriteFile(*detectJSON, out, 0o644))
		}
	}
	if *stats {
		if *jsonOut {
			snap := res.Snapshot()
			if detectRep != nil {
				detectRep.AddMetrics(snap)
			}
			out, err := json.MarshalIndent(snap, "", "  ")
			fail(err)
			fmt.Println(string(out))
		} else {
			s := res.Stats
			fmt.Printf("interp-insts=%d blocks=%d traces=%d block-execs=%d bundles=%d\n",
				s.InterpInsts, s.Blocks, s.Traces, s.BlockExecs, s.Bundles)
			fmt.Printf("spec-loads=%d squashed=%d recoveries=%d side-exits=%d\n",
				s.SpecLoads, s.SpecSquash, s.Recoveries, s.SideExits)
			fmt.Printf("patterns=%d risky-loads=%d guard-edges=%d compile-errors=%d\n",
				s.PatternsFound, s.RiskyLoads, s.GuardEdges, s.CompileErrs)
			fmt.Printf("traps=%s\n", s.Traps.String())
		}
	}
	// os.Exit skips deferred calls, so profiles and the trace are flushed
	// explicitly before propagating the guest's exit code.
	if transCache != nil {
		if err := transCache.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "gbrun: warning:", err)
		}
	}
	shutdown()
	os.Exit(int(res.Exit.Code))
}

// buildTransCache wires the persistent translation cache when
// requested: an explicit directory, or the user cache dir by default.
func buildTransCache(enabled bool, dir string) *tcache.Cache {
	if !enabled && dir == "" {
		return nil
	}
	if dir == "" {
		var err error
		dir, err = tcache.DefaultDir()
		fail(err)
	}
	return tcache.New(dir)
}

// writeAudit prints the explainability table and/or writes the JSON
// document for a collected machine-wide audit.
func writeAudit(aud *ghostbusters.Audit, table bool, jsonPath string) {
	if aud == nil {
		fail(fmt.Errorf("audit requested but none collected"))
	}
	if table {
		fmt.Print(aud.Format())
	}
	if jsonPath != "" {
		out, err := json.MarshalIndent(aud.Doc(), "", "  ")
		fail(err)
		fail(os.WriteFile(jsonPath, append(out, '\n'), 0o644))
	}
}

// printProfile ranks the translated regions by the simulated cycles
// attributed to them, with each region's share of the whole run.
func printProfile(machine *ghostbusters.Machine, total uint64) {
	fmt.Println("hottest translated regions (by attributed cycles):")
	for i, r := range machine.ProfileReport() {
		if i >= 10 {
			break
		}
		kind := "block"
		if r.IsTrace {
			kind = "trace"
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Cycles) / float64(total)
		}
		fmt.Printf("  %#010x %-6s %5.1f%% %10d cycles, %8d dispatches, %3d insts in %3d bundles\n",
			r.PC, kind, share, r.Cycles, r.Dispatches, r.GuestInsts, r.Bundles)
	}
}

// tracer is closed by shutdown() on every exit path; traceFile after it.
var (
	tracer    *ghostbusters.Tracer
	traceFile *os.File
	// traceFileSink is the -traceout sink, kept so -spans can mirror the
	// host timeline into the same Perfetto document.
	traceFileSink ghostbusters.TraceSink

	spanTracer *ghostbusters.SpanTracer
	spanRoot   ghostbusters.Span
	spanFile   *os.File
)

// buildSpans wires the host-side span layer: a JSONL file sink, plus a
// mirror into the -traceout Perfetto document when one is open — one
// file, two clock domains. Returns the root span of the run (the zero
// Span when -spans is unset: every hook stays wired at zero cost).
func buildSpans(path string) ghostbusters.Span {
	if path == "" {
		return ghostbusters.Span{}
	}
	f, err := os.Create(path)
	fail(err)
	spanFile = f
	var sinks []ghostbusters.SpanSink
	sinks = append(sinks, ghostbusters.NewSpanJSONLSink(f))
	if pf, ok := ghostbusters.NewSpanPerfettoSink(traceFileSink); ok {
		sinks = append(sinks, pf)
	}
	spanTracer = ghostbusters.NewSpanTracer(ghostbusters.NewSpanMultiSink(sinks...))
	spanRoot = spanTracer.Start("gbrun")
	return spanRoot
}

// endRunSpan closes the run span, attributing its host time to
// consecutive translate and execute intervals from the machine's
// accumulated translation latency (translation actually interleaves
// with execution; the split shows attributed durations).
func endRunSpan(rs ghostbusters.Span, m *ghostbusters.Machine) {
	if !rs.Enabled() {
		return
	}
	if transNS := m.TranslateHostNS(); transNS > 0 {
		start := rs.StartNS()
		rs.Emit("translate", start, start+transNS, ghostbusters.SpanInt("ns", transNS))
		rs.Emit("execute", start+transNS, rs.Tracer().Now(), ghostbusters.SpanInt("cycles", int64(m.Cycles())))
	}
	rs.End(ghostbusters.SpanInt("cycles", int64(m.Cycles())))
}

// buildTracer wires the requested sinks. -trace alone records at block
// granularity (the classic stderr log); -traceout records everything
// including per-speculative-load events. A detector rides the same
// stream as a tee observer (it needs spec-level events, so it raises
// the level even without a trace file).
func buildTracer(stderrLog bool, path, format string, det *ghostbusters.Detector) *ghostbusters.Tracer {
	var sinks []ghostbusters.TraceSink
	level := ghostbusters.TraceOff
	if stderrLog {
		sinks = append(sinks, ghostbusters.NewTextSink(os.Stderr))
		level = ghostbusters.TraceBlock
	}
	if path != "" {
		f, err := os.Create(path)
		fail(err)
		traceFile = f
		sink, err := ghostbusters.TraceSinkFor(format, f)
		fail(err)
		traceFileSink = sink
		sinks = append(sinks, sink)
		level = ghostbusters.TraceSpec
	}
	var primary ghostbusters.TraceSink
	switch len(sinks) {
	case 0:
	case 1:
		primary = sinks[0]
	default:
		primary = ghostbusters.NewTraceMultiSink(sinks...)
	}
	switch {
	case det != nil && primary != nil:
		tracer = ghostbusters.NewTracer(ghostbusters.TraceSpec, ghostbusters.NewTraceTee(primary, det))
	case det != nil:
		tracer = ghostbusters.NewTracer(ghostbusters.TraceSpec, det)
	case primary != nil:
		tracer = ghostbusters.NewTracer(level, primary)
	default:
		return nil
	}
	return tracer
}

func fail(err error) {
	if err != nil {
		shutdown()
		fmt.Fprintln(os.Stderr, "gbrun:", err)
		os.Exit(1)
	}
}

// shutdown flushes every buffered output exactly once: pprof profiles,
// the span layer (before the cycle tracer — its Perfetto mirror writes
// into the document the tracer terminates), the trace sink chain, and
// the files themselves.
func shutdown() {
	flushProfiles()
	if spanTracer != nil {
		spanRoot.End()
		if err := spanTracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gbrun: spans:", err)
		}
		spanTracer = nil
	}
	if spanFile != nil {
		if err := spanFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gbrun: spans:", err)
		}
		spanFile = nil
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gbrun: trace:", err)
		}
		tracer = nil
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "gbrun: trace:", err)
		}
		traceFile = nil
	}
}

var (
	cpuProfileFile  *os.File
	memProfilePath  string
	profilesFlushed bool
)

func startProfiles(cpu, mem string) {
	memProfilePath = mem
	if cpu != "" {
		f, err := os.Create(cpu)
		fail(err)
		cpuProfileFile = f
		fail(pprof.StartCPUProfile(f))
	}
}

func flushProfiles() {
	if profilesFlushed {
		return
	}
	profilesFlushed = true
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gbrun:", err)
			return
		}
		defer f.Close()
		runtime.GC() // one final collection for accurate live-heap numbers
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gbrun:", err)
		}
	}
}
