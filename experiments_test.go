package ghostbusters_test

// Executable versions of the paper's claims (EXPERIMENTS.md): these lock
// the reproduced *shape* of every experiment so refactors of the DBT
// engine cannot silently regress it. Sizes are reduced to keep the test
// fast; the orderings asserted are size-independent.

import (
	"testing"

	"ghostbusters"
	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/polybench"
)

// Paper, Section V-A: both variants leak on the unsafe machine and are
// stopped by every countermeasure.
func TestClaimE1PoCMatrix(t *testing.T) {
	for _, v := range []ghostbusters.AttackVariant{ghostbusters.SpectreV1, ghostbusters.SpectreV4} {
		for _, mode := range harness.Fig4Modes {
			cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), mode)
			res, err := ghostbusters.RunAttack(v, cfg, ghostbusters.AttackParams{Secret: []byte{0x7C, 0xE2}})
			if err != nil {
				t.Fatalf("%s/%s: %v", v, mode, err)
			}
			if mode == core.ModeUnsafe && !res.Success() {
				t.Errorf("claim E1: %s must leak under unsafe (got %d/%d bytes)", v, res.BytesCorrect, len(res.Secret))
			}
			if mode != core.ModeUnsafe && res.BytesCorrect != 0 {
				t.Errorf("claim E1: %s must not leak under %s", v, mode)
			}
		}
	}
}

// Paper, Figure 4: the countermeasure costs nothing on pattern-free
// kernels (GhostBusters == fence == unsafe cycles exactly, since no
// pattern fires), while disabling speculation costs real time on
// load-bound kernels.
func TestClaimFig4Shape(t *testing.T) {
	for _, name := range []string{"gemm", "bicg", "atax"} {
		k, err := polybench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		row, err := harness.RunKernel(k, 12, dbt.DefaultConfig(), harness.Fig4Modes)
		if err != nil {
			t.Fatal(err)
		}
		unsafe := row.Cycles[core.ModeUnsafe]
		if gb := row.Cycles[core.ModeGhostBusters]; gb != unsafe {
			t.Errorf("claim E2 (%s): ghostbusters %d cycles != unsafe %d (pattern-free kernels must be free)", name, gb, unsafe)
		}
		if fe := row.Cycles[core.ModeFence]; fe != unsafe {
			t.Errorf("claim E3 (%s): fence %d cycles != unsafe %d", name, fe, unsafe)
		}
		if ns := row.Cycles[core.ModeNoSpeculation]; ns <= unsafe {
			t.Errorf("claim E2 (%s): nospec %d cycles not slower than unsafe %d", name, ns, unsafe)
		}
		if st := row.Stats[core.ModeGhostBusters]; st.PatternsFound != 0 {
			t.Errorf("claim E2 (%s): pattern should not fire on flat affine kernels (%d found)", name, st.PatternsFound)
		}
	}
}

// Paper, Section V-B last experiment: with the pointer-table layout the
// pattern fires in hot loops, and the fine-grained mitigation is far
// cheaper than the fence (which is close to disabling speculation).
func TestClaimE4PtrMatmulShape(t *testing.T) {
	k, err := polybench.ByName("matmul-ptr")
	if err != nil {
		t.Fatal(err)
	}
	row, err := harness.RunKernel(k, 14, dbt.DefaultConfig(), harness.Fig4Modes)
	if err != nil {
		t.Fatal(err)
	}
	unsafe := float64(row.Cycles[core.ModeUnsafe])
	gb := float64(row.Cycles[core.ModeGhostBusters]) / unsafe
	fence := float64(row.Cycles[core.ModeFence]) / unsafe
	nospec := float64(row.Cycles[core.ModeNoSpeculation]) / unsafe

	if st := row.Stats[core.ModeGhostBusters]; st.PatternsFound == 0 || st.RiskyLoads == 0 {
		t.Fatalf("claim E4: pattern must fire in the pointer layout (%+v)", st)
	}
	// Fine-grained must recover most of the fence's cost (paper: 4% vs
	// 15%; we assert at least half the gap, size-independently).
	if !(gb < fence) {
		t.Errorf("claim E4: ghostbusters (%.3f) not cheaper than fence (%.3f)", gb, fence)
	}
	if gb-1 > (fence-1)/2 {
		t.Errorf("claim E4: fine-grained overhead %.1f%% not well below fence %.1f%%",
			100*(gb-1), 100*(fence-1))
	}
	// The fence is of the same order as disabling speculation.
	if fence > nospec*1.05 {
		t.Errorf("claim E4: fence (%.3f) should not exceed nospec (%.3f)", fence, nospec)
	}
}

// Paper, Section IV: the mitigation keeps speculating — only the risky
// accesses are pinned.
func TestClaimFineGrainedKeepsSpeculation(t *testing.T) {
	k, _ := polybench.ByName("matmul-ptr")
	row, err := harness.RunKernel(k, 12, dbt.DefaultConfig(),
		[]core.Mode{core.ModeUnsafe, core.ModeGhostBusters, core.ModeFence})
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats[core.ModeGhostBusters].SpecLoads == 0 {
		t.Error("claim IV: ghostbusters must keep issuing speculative loads")
	}
	if row.Stats[core.ModeFence].SpecLoads >= row.Stats[core.ModeGhostBusters].SpecLoads {
		t.Error("claim IV: the fence should kill far more speculation than the fine-grained fix")
	}
}
