package ghostbusters_test

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md section 6 and EXPERIMENTS.md):
//
//	BenchmarkE1_*        Section V-A proof-of-concept matrix
//	BenchmarkFig4_*      Figure 4 slowdown comparison (also covers the
//	                     fence variant, the paper's third experiment, E3)
//	BenchmarkE4_*        Section V-B pointer-layout matmul
//	BenchmarkAblation_*  design-choice ablations
//
// Wall-clock time measures the simulator; the experiment's real metric
// is simulated guest cycles, reported as "guest-cycles/op". Every
// benchmark also validates architectural results (kernels against their
// Go references, attacks against the planted secret), so the benchmark
// suite doubles as an end-to-end test.

import (
	"context"
	"fmt"
	"testing"

	"ghostbusters"
	"ghostbusters/internal/cache"
	"ghostbusters/internal/core"
	"ghostbusters/internal/dbt"
	"ghostbusters/internal/harness"
	"ghostbusters/internal/ir"
	"ghostbusters/internal/oo7scan"
	"ghostbusters/internal/polybench"
	"ghostbusters/internal/riscv"
	"ghostbusters/internal/tcache"
	"ghostbusters/internal/vliw"
)

var benchModes = []core.Mode{
	core.ModeUnsafe, core.ModeGhostBusters, core.ModeFence, core.ModeNoSpeculation,
}

// --- E1: proof-of-concept attacks ---------------------------------------

func benchAttack(b *testing.B, v ghostbusters.AttackVariant, mode core.Mode) {
	b.Helper()
	cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), mode)
	secret := []byte{0x6B, 0xD4}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := ghostbusters.RunAttack(v, cfg, ghostbusters.AttackParams{Secret: secret})
		if err != nil {
			b.Fatal(err)
		}
		leaked := res.Success()
		if mode == core.ModeUnsafe && !leaked {
			b.Fatalf("E1: %s under unsafe did not leak", v)
		}
		if mode != core.ModeUnsafe && res.BytesCorrect != 0 {
			b.Fatalf("E1: %s leaked %d bytes under %s", v, res.BytesCorrect, mode)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "guest-cycles/op")
}

func BenchmarkE1_SpectreV1(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.String(), func(b *testing.B) {
			benchAttack(b, ghostbusters.SpectreV1, mode)
		})
	}
}

func BenchmarkE1_SpectreV4(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.String(), func(b *testing.B) {
			benchAttack(b, ghostbusters.SpectreV4, mode)
		})
	}
}

// --- Figure 4 (and E3, the fence variant) -------------------------------

// benchArts memoizes generated and assembled kernels across the whole
// benchmark suite, so iterations measure the simulator rather than the
// assembler (the artifact cache the parallel Runner shares between jobs).
var benchArts = harness.NewArtifacts()

func benchKernel(b *testing.B, name string, n int, mode core.Mode) {
	b.Helper()
	k, err := polybench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.Mitigation = mode
	bench := harness.KernelBench(k, n)
	var cycles uint64
	for i := 0; i < b.N; i++ {
		// Validates against the Go reference on every run.
		run, err := bench.Run(context.Background(), cfg, benchArts)
		if err != nil {
			b.Fatal(err)
		}
		cycles = run.Cycles
	}
	b.ReportMetric(float64(cycles), "guest-cycles/op")
}

// The whole Figure 4 matrix through the parallel Runner at a reduced
// size: the wall clock of the experiment harness itself, per worker
// count (compare -j 1 vs GOMAXPROCS). One shared artifact set and one
// shared in-memory translation cache serve every iteration, with a
// warm-up sweep before the clock starts: the benchmark measures the
// execution backend in steady state — chained dispatch of cached
// translations — not the assembler or the DBT compiler. (Results stay
// bit-identical either way; the differential tests assert it.)
func BenchmarkFig4Matrix(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("j%d", workers)
		if workers == 0 {
			name = "jMax"
		}
		b.Run(name, func(b *testing.B) {
			arts := harness.NewArtifacts()
			tc := tcache.New("")
			sweep := func() {
				r := &harness.Runner{Workers: workers, Artifacts: arts, TransCache: tc}
				rows, err := r.Fig4(context.Background(), dbt.DefaultConfig(), benchModes, 8)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(polybench.All())+2 {
					b.Fatalf("matrix returned %d rows", len(rows))
				}
			}
			sweep() // warm the artifact and translation caches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep()
			}
		})
	}
}

func BenchmarkFig4(b *testing.B) {
	for _, k := range polybench.All() {
		for _, mode := range benchModes {
			b.Run(fmt.Sprintf("%s/%s", k.Name, mode), func(b *testing.B) {
				benchKernel(b, k.Name, 0, mode)
			})
		}
	}
}

// --- E4: matmul with array-of-pointer 2-D layout -------------------------

func BenchmarkE4_MatmulPtr(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.String(), func(b *testing.B) {
			benchKernel(b, "matmul-ptr", 0, mode)
		})
	}
}

// --- Ablations (DESIGN.md section 8) -------------------------------------

// Issue width: how the NoSpeculation penalty scales with machine width.
func BenchmarkAblation_IssueWidth(b *testing.B) {
	widths := map[string]vliw.Config{
		"2wide": vliw.NarrowConfig(),
		"4wide": vliw.DefaultConfig(),
		"8wide": vliw.WideConfig(),
	}
	for wname, wcfg := range widths {
		for _, mode := range []core.Mode{core.ModeUnsafe, core.ModeNoSpeculation} {
			b.Run(fmt.Sprintf("%s/%s", wname, mode), func(b *testing.B) {
				cfg := dbt.DefaultConfig()
				cfg.Core = wcfg
				cfg.Mitigation = mode
				k, _ := polybench.ByName("gemm")
				var cycles uint64
				for i := 0; i < b.N; i++ {
					spec, err := k.Make(k.DefaultN)
					if err != nil {
						b.Fatal(err)
					}
					run, err := harness.RunSpec(spec, cfg)
					if err != nil {
						b.Fatal(err)
					}
					cycles = run.Cycles
				}
				b.ReportMetric(float64(cycles), "guest-cycles/op")
			})
		}
	}
}

// Cache miss penalty: the side-channel margin the attacker measures.
func BenchmarkAblation_MissPenalty(b *testing.B) {
	for _, penalty := range []uint64{8, 20, 50} {
		b.Run(fmt.Sprintf("penalty%d", penalty), func(b *testing.B) {
			cfg := ghostbusters.DefaultConfig()
			cfg.Cache.MissPenalty = penalty
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := ghostbusters.RunAttack(ghostbusters.SpectreV1, cfg,
					ghostbusters.AttackParams{Secret: []byte{0x3C}})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Success() {
					b.Fatalf("attack failed with miss penalty %d", penalty)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles/op")
		})
	}
}

// Trace length / unrolling: the speculation window the DBT engine builds.
func BenchmarkAblation_TraceLen(b *testing.B) {
	type variant struct {
		insts, unroll int
	}
	for name, v := range map[string]variant{
		"short16x1": {16, 1},
		"mid32x2":   {32, 2},
		"full48x4":  {48, 4},
	} {
		for _, mode := range []core.Mode{core.ModeUnsafe, core.ModeNoSpeculation} {
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				cfg := dbt.DefaultConfig()
				cfg.MaxTraceInsts = v.insts
				cfg.MaxUnroll = v.unroll
				cfg.Mitigation = mode
				k, _ := polybench.ByName("gemm")
				var cycles uint64
				for i := 0; i < b.N; i++ {
					spec, err := k.Make(k.DefaultN)
					if err != nil {
						b.Fatal(err)
					}
					run, err := harness.RunSpec(spec, cfg)
					if err != nil {
						b.Fatal(err)
					}
					cycles = run.Cycles
				}
				b.ReportMetric(float64(cycles), "guest-cycles/op")
			})
		}
	}
}

// Poison analysis cost: pure host-side analysis throughput per block
// (the paper argues the analysis is cheap because it is block-local).
func BenchmarkAblation_PoisonAnalysis(b *testing.B) {
	// A representative block: Spectre v4 shape with a longer ALU chain.
	build := func() *ir.Block {
		bu := ir.NewBuilder(0)
		n0 := bu.Emit(ir.Inst{Op: riscv.MUL, A: ir.RegIn(5), B: ir.RegIn(6), DestArch: 7})
		bu.Emit(ir.Inst{Op: riscv.SD, A: ir.RegIn(8), B: ir.FromInst(n0), DestArch: -1})
		cur := bu.Emit(ir.Inst{Op: riscv.LD, A: ir.RegIn(9), DestArch: 10})
		for i := 0; i < 24; i++ {
			cur = bu.Emit(ir.Inst{Op: riscv.XORI, A: ir.FromInst(cur), Imm: int64(i), DestArch: 10})
		}
		bu.Emit(ir.Inst{Op: riscv.LBU, A: ir.FromInst(cur), DestArch: 11})
		return bu.Block()
	}
	blk := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := core.Analyze(blk)
		if !rep.PatternFound() {
			b.Fatal("pattern not found")
		}
	}
}

// Cache model throughput (the innermost simulator primitive).
func BenchmarkAblation_CacheAccess(b *testing.B) {
	c := cache.MustNew(cache.DefaultConfig())
	var lat uint64
	for i := 0; i < b.N; i++ {
		l, _ := c.Access(uint64(i*64) & (1<<20 - 1))
		lat += l
	}
	_ = lat
}

// End-to-end simulator speed: guest instructions per host second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	src := `
main:
	li s1, 0
	li s2, 0
loop:
	add s2, s2, s1
	addi s1, s1, 1
	li t0, 20000
	blt s1, t0, loop
	andi a0, s2, 0xff
	ecall
`
	prog, err := ghostbusters.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	var instret uint64
	for i := 0; i < b.N; i++ {
		m, err := ghostbusters.NewMachine(ghostbusters.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(prog); err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		instret = res.Instret
	}
	b.ReportMetric(float64(instret), "guest-insts/op")
}

// oo7-style whole-binary analysis vs the block-local GhostBusters
// analysis: the cost comparison of the paper's Section VI.
func BenchmarkAblation_OO7WholeBinary(b *testing.B) {
	spec, err := polybench.MakeGemm(12)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := riscv.Assemble(spec.Source)
	if err != nil {
		b.Fatal(err)
	}
	var visited int
	for i := 0; i < b.N; i++ {
		rep, err := oo7scan.Scan(prog, oo7scan.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		visited = rep.InstsVisited
	}
	b.ReportMetric(float64(visited), "insts-visited/op")
}
