// Polybench on the DBT-based processor: run one kernel under the four
// mitigation modes and print a Figure 4-style row — cycles, slowdowns,
// and whether the GhostBusters analysis found the Spectre pattern. Try
// it with the flat gemm (no pattern, no slowdown) and with matmul-ptr
// (the paper's pointer-table layout: pattern in the hot loop, where the
// fine-grained mitigation stays much cheaper than a fence).
package main

import (
	"flag"
	"fmt"
	"log"

	"ghostbusters"
)

func main() {
	name := flag.String("kernel", "matmul-ptr", "kernel name (gemm, atax, ..., matmul-ptr)")
	n := flag.Int("n", 0, "problem size (0 = default)")
	flag.Parse()

	k, err := ghostbusters.KernelByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	row, err := ghostbusters.RunKernel(k, *n, ghostbusters.DefaultConfig(), ghostbusters.Fig4Modes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s (results validated against the native Go reference)\n\n", k.Name)
	fmt.Print(ghostbusters.FormatRows([]*ghostbusters.Row{row}, ghostbusters.Fig4Modes))

	gb := row.Stats[ghostbusters.ModeGhostBusters]
	fmt.Printf("\nGhostBusters analysis: %d blocks with the Spectre pattern, %d risky loads pinned, %d guard dependencies inserted\n",
		gb.PatternsFound, gb.RiskyLoads, gb.GuardEdges)
	if gb.PatternsFound == 0 {
		fmt.Println("(no pattern: flat affine accesses never use loaded values as addresses,")
		fmt.Println(" which is why the countermeasure is free on the standard suite)")
	}
}
