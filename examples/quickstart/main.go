// Quickstart: assemble a small guest program and run it on the DBT-based
// processor under each mitigation mode, printing cycle counts and
// speculation statistics.
package main

import (
	"fmt"
	"log"

	"ghostbusters"
)

// A dot-product over two views of the same buffer: the DBT engine cannot
// prove the store and the loads disjoint, so the unsafe configuration
// uses memory dependency speculation in the hot loop.
const src = `
	.data
a:	.space 1024
b:	.space 1024
out:	.dword 0
	.text
main:
	la s0, a
	la s1, b
	# initialise a[i] = i, b[i] = 2i+1
	li s2, 0
init:
	slli t0, s2, 3
	add t1, s0, t0
	sd s2, 0(t1)
	slli t2, s2, 1
	addi t2, t2, 1
	add t3, s1, t0
	sd t2, 0(t3)
	addi s2, s2, 1
	li t4, 128
	blt s2, t4, init
	# dot product
	li s2, 0
	li s3, 0
dot:
	slli t0, s2, 3
	add t1, s0, t0
	ld t2, 0(t1)
	add t3, s1, t0
	ld t4, 0(t3)
	mul t5, t2, t4
	add s3, s3, t5
	sd s3, 16(s1)      # running total: a store the loads must be
	                   # disambiguated against
	addi s2, s2, 1
	li t6, 128
	blt s2, t6, dot
	la t0, out
	sd s3, 0(t0)
	li a0, 0
	ecall
`

func main() {
	prog, err := ghostbusters.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 128-element dot product on the DBT-based processor")
	fmt.Println()
	fmt.Printf("%-14s %10s %12s %12s %12s\n", "mode", "cycles", "spec-loads", "recoveries", "patterns")
	for _, mode := range ghostbusters.Fig4Modes {
		m, err := ghostbusters.NewMachine(ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), mode))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Load(prog); err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		v, _ := m.Mem().Read(prog.MustSymbol("out"), 8)
		fmt.Printf("%-14s %10d %12d %12d %12d   (result %d)\n",
			mode, res.Cycles, res.Stats.SpecLoads, res.Stats.Recoveries, res.Stats.PatternsFound, int64(v))
	}
	fmt.Println()
	fmt.Println("All modes compute the same result; they differ only in how much")
	fmt.Println("the DBT engine is allowed to speculate.")
}
