// Spectre v1 on a DBT-based processor (paper Section III-A): the DBT
// engine merges the bounds-checked access of Fig. 1 into a superblock
// and hoists the dependent loads above the check. This example runs the
// full attack — train, flush, trigger out-of-bounds, probe with rdcycle —
// against a secret the victim never reads architecturally, then repeats
// it with the GhostBusters mitigation enabled.
package main

import (
	"fmt"
	"log"

	"ghostbusters"
)

func main() {
	secret := []byte("TOPSECRT")
	fmt.Printf("the secret: %q\n\n", secret)

	for _, mode := range []ghostbusters.Mode{
		ghostbusters.ModeUnsafe,
		ghostbusters.ModeGhostBusters,
		ghostbusters.ModeFence,
		ghostbusters.ModeNoSpeculation,
	} {
		cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), mode)
		res, err := ghostbusters.RunAttack(ghostbusters.SpectreV1, cfg, ghostbusters.AttackParams{
			Secret:        secret,
			ProtectSecret: true, // architectural reads of the secret fault
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "attack FAILED"
		if res.Success() {
			verdict = "secret LEAKED"
		}
		fmt.Printf("%-14s recovered %-10q (%d/%d bytes) — %s\n",
			mode, printable(res.Recovered), res.BytesCorrect, len(secret), verdict)
		fmt.Printf("%14s %d cycles, %d speculative loads, %d Spectre patterns detected\n",
			"", res.Cycles, res.Stats.SpecLoads, res.Stats.PatternsFound)
	}
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 0x20 && c < 0x7F {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
