// Analysis: look inside the DBT engine. This example runs the Fig. 1
// Spectre gadget until the engine builds its superblock, then prints
// (1) the translated VLIW schedule — showing the dismissable loads
// hoisted above the side exit — and (2) the IR data-flow graph in
// Graphviz format with the poison analysis overlaid, reproducing the
// paper's Figure 3 for real translated code.
package main

import (
	"fmt"
	"log"

	"ghostbusters"
)

const gadget = `
	.data
size:	.dword 16
buffer:	.space 16
secret:	.byte 0x42
	.align 6
arrayVal: .space 32768
	.text
main:
	li s0, 0
train:
	andi a0, s0, 15
	call victim
	addi s0, s0, 1
	li t0, 64
	blt s0, t0, train
	li a0, 0
	ecall

	# The Fig. 1 gadget.
victim:
	la t0, size
	ld t0, 0(t0)
	bgeu a0, t0, vdone
	la t1, buffer
	add t1, t1, a0
	lbu t2, 0(t1)
	slli t2, t2, 7
	la t3, arrayVal
	add t3, t3, t2
	lbu t4, 0(t3)
vdone:
	ret
`

func main() {
	prog, err := ghostbusters.Assemble(gadget)
	if err != nil {
		log.Fatal(err)
	}
	m, err := ghostbusters.NewMachine(ghostbusters.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}

	victim := prog.MustSymbol("victim")
	blk := m.BlockAt(victim)
	if blk == nil {
		log.Fatal("victim was not translated")
	}
	fmt.Println("== translated VLIW code for the victim superblock ==")
	fmt.Println("(note the ldd dismissable loads scheduled BEFORE the br side exit:")
	fmt.Println(" that static ordering is the Spectre v1 window)")
	fmt.Println()
	fmt.Print(blk.String())

	fmt.Println()
	fmt.Println("== the same block's IR data-flow graph (paper Fig. 3) ==")
	fmt.Println("(render with: dot -Tsvg; blue = poisoned values)")
	fmt.Println()
	dot, err := m.DumpIR(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dot)
}
