// Spectre v4 on a DBT-based processor (paper Section III-B): the DBT
// engine uses memory dependency speculation — a load is scheduled above
// a store whose address it cannot disambiguate, and the Memory Conflict
// Buffer rolls the execution back when the store later overlaps it. The
// rollback restores the architectural state, but the cache keeps the
// secret-dependent line: this example recovers a secret through exactly
// that window, then shows every countermeasure closing it.
package main

import (
	"fmt"
	"log"

	"ghostbusters"
)

func main() {
	secret := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x42}
	fmt.Printf("the secret: %x\n\n", secret)

	for _, mode := range []ghostbusters.Mode{
		ghostbusters.ModeUnsafe,
		ghostbusters.ModeGhostBusters,
		ghostbusters.ModeFence,
		ghostbusters.ModeNoSpeculation,
	} {
		cfg := ghostbusters.WithMitigation(ghostbusters.DefaultConfig(), mode)
		res, err := ghostbusters.RunAttack(ghostbusters.SpectreV4, cfg, ghostbusters.AttackParams{
			Secret: secret,
			Flush:  ghostbusters.FlushLineByLine, // the paper's RISC-V flush
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "attack FAILED"
		if res.Success() {
			verdict = "secret LEAKED"
		}
		fmt.Printf("%-14s recovered %x (%d/%d bytes) — %s\n",
			mode, res.Recovered, res.BytesCorrect, len(secret), verdict)
		fmt.Printf("%14s %d MCB conflict rollbacks (the hardware repaired the\n", "", res.Stats.Recoveries)
		fmt.Printf("%14s architectural state every time; the cache still leaked)\n", "")
	}
}
